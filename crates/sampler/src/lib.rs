//! `ft-sampler`: O(1)-samples race detection.
//!
//! The guard layer (`fasttrack::guard`) treats sampling as an emergency
//! fallback under memory pressure. This crate turns it into a *first-class
//! detector tier* in the spirit of "Dynamic Race Detection with O(1)
//! Samples": a seeded, budgeted sampler that
//!
//! * keeps **constant shadow bytes per variable** — at most
//!   [`SamplerConfig::budget`] sampled access epochs per variable, regardless
//!   of how many threads touch it (no `Rvc` inflation, ever);
//! * maintains **exact** vector clocks on synchronization operations (the
//!   rare ~3% of events), so every happens-before verdict on a sampled pair
//!   is precise;
//! * replays each admitted access against the variable's stored samples
//!   through the *real* Figure 5 transition rules ([`fasttrack::rules`]) —
//!   the same code the sequential detector and the parallel shards run;
//! * is **sound but incomplete**: it may miss races the budget or the
//!   admission rate skipped, but every warning it reports is a genuine
//!   concurrent conflicting pair, so full FastTrack also warns on that
//!   variable. The escalation story is: run the sampler always-on, and
//!   re-run FastTrack on anything it flags.
//!
//! Admission is a seeded geometric-gap process over the access stream
//! (Vitter's skip-counting): between admissions the per-event cost is one
//! counter decrement, which is what keeps the pass within a few percent of
//! an EMPTY replay. For a fixed [`SamplerConfig::seed`] and trace the
//! admitted set — and therefore the report — is bit-for-bit deterministic.
//!
//! # Quick start
//!
//! ```
//! use ft_sampler::{Sampler, SamplerConfig};
//! use fasttrack::Detector;
//! use ft_trace::{TraceBuilder, VarId};
//! use ft_clock::Tid;
//!
//! // Two threads write x without synchronization: a write-write race.
//! let mut b = TraceBuilder::with_threads(2);
//! b.write(Tid::new(0), VarId::new(0))?;
//! b.write(Tid::new(1), VarId::new(0))?;
//! let trace = b.finish();
//!
//! // rate = 1.0 admits every access, so the race is caught deterministically.
//! let mut s = Sampler::with_config(SamplerConfig::default().with_rate(1.0));
//! s.run(&trace);
//! assert_eq!(s.warnings().len(), 1);
//! # Ok::<(), ft_trace::FeasibilityError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use fasttrack::rules::{self, RuleHits};
use fasttrack::{
    base_registry, AccessSummary, Detector, Disposition, Empty, FastTrackConfig, Provenance,
    ReadHistory, Stats, ThreadState, VarState, VolatileClock, Warning, WarningKind,
};
use ft_clock::{Epoch, Tid, VcPool, VectorClock};
use ft_obs::Snapshot;
use ft_trace::{AccessKind, LockId, Op, Prng, Trace, VarId};
use std::time::Instant;

/// Configuration for the [`Sampler`] detector.
///
/// The two knobs that matter operationally are [`budget`](Self::budget)
/// (how many sampled accesses each variable retains — the "O(1)" constant)
/// and [`rate`](Self::rate) (what fraction of the access stream is admitted
/// at all). See `docs/OPERATIONS.md` §7 for sizing guidance derived from
/// `BENCH_sampling.json`.
///
/// # Examples
///
/// ```
/// use ft_sampler::SamplerConfig;
///
/// let cfg = SamplerConfig::default();
/// assert_eq!(cfg.budget, 4);
/// assert_eq!(cfg.overhead_budget_pct, 10.0);
///
/// let tuned = SamplerConfig::default()
///     .with_budget(8)
///     .with_seed(7)
///     .with_rate(0.05);
/// assert_eq!(tuned.budget, 8);
/// assert_eq!(tuned.seed, 7);
/// assert!((tuned.rate - 0.05).abs() < 1e-12);
/// ```
///
/// A budget of zero is valid and means "admit but retain nothing": the
/// sampler then reports no races (and must not panic):
///
/// ```
/// use ft_sampler::SamplerConfig;
/// let cfg = SamplerConfig::default().with_budget(0);
/// assert_eq!(cfg.budget, 0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SamplerConfig {
    /// Maximum sampled accesses retained per variable (the O(1) constant).
    /// `0` disables retention entirely: nothing is stored, nothing reported.
    pub budget: usize,
    /// Seed for the admission and eviction draws. Reports are deterministic
    /// per `(seed, trace)` pair.
    pub seed: u64,
    /// Expected fraction of data accesses admitted for sampling, in
    /// `[0.0, 1.0]`. `1.0` admits every access; `0.0` admits none. The
    /// admission gap between samples is geometric with mean `1/rate`.
    pub rate: f64,
    /// The self-measurement target: the run-time overhead over an EMPTY
    /// pass, in percent, that this configuration is expected to stay under.
    /// Purely *reported* (see [`Sampler::measured_overhead_pct`]) — it never
    /// feeds back into admission, which would break determinism.
    pub overhead_budget_pct: f64,
    /// Report every sampled race instead of at most one per variable.
    pub report_all: bool,
    /// Disable the lazy epoch-only sync summary and copy lock clocks
    /// eagerly at every release (the pre-lazy behaviour). Kept as the
    /// measured baseline for `ft-bench --bin sync` and the agreement
    /// property suite; reports are identical either way.
    pub eager_sync: bool,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            budget: 4,
            seed: 0x5eed_ca11,
            // ~1 admission per thousand accesses: low enough that the
            // admission slow path (a cold hash probe plus the Figure 5
            // checks) stays invisible next to an EMPTY pass, the regime a
            // deploy-everywhere tier lives in. Raise it (or the budget)
            // when escalating a suspicious workload to higher recall.
            rate: 0.001,
            overhead_budget_pct: 10.0,
            report_all: false,
            eager_sync: false,
        }
    }
}

impl SamplerConfig {
    /// Sets the per-variable sample budget.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the admission seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the admission rate (clamped to `[0.0, 1.0]`).
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the reported overhead target in percent.
    pub fn with_overhead_budget_pct(mut self, pct: f64) -> Self {
        self.overhead_budget_pct = pct;
        self
    }

    /// Reports every sampled race instead of deduplicating per variable.
    pub fn with_report_all(mut self, report_all: bool) -> Self {
        self.report_all = report_all;
        self
    }

    /// Switches lock-clock maintenance back to eager per-release copies.
    pub fn with_eager_sync(mut self, eager_sync: bool) -> Self {
        self.eager_sync = eager_sync;
        self
    }
}

/// One retained sample: the accessing thread's epoch at access time, plus
/// whether the access was a write. 8 bytes on 64-bit targets.
#[derive(Copy, Clone, Debug)]
struct SampleSlot {
    epoch: Epoch,
    write: bool,
}

impl Default for SampleSlot {
    fn default() -> Self {
        SampleSlot {
            epoch: Epoch::MIN,
            write: false,
        }
    }
}

/// Samples stored inline in [`VarSamples`] before spilling to the heap.
/// Covers the default budget (4), so a default-configured run never
/// allocates per-variable sample storage at all.
const INLINE_SLOTS: usize = 4;

/// Per-variable sample state: at most `budget` slots plus a reservoir
/// counter. The footprint is independent of the thread count — the property
/// that distinguishes this tier from FastTrack's adaptive `Rvc`.
#[derive(Clone, Debug, Default)]
struct VarSamples {
    /// Admitted accesses ever seen on this variable (reservoir denominator).
    seen: u64,
    inline_len: u8,
    inline: [SampleSlot; INLINE_SLOTS],
    /// Overflow storage for budgets above [`INLINE_SLOTS`].
    spill: Vec<SampleSlot>,
}

impl VarSamples {
    fn len(&self) -> usize {
        self.inline_len as usize + self.spill.len()
    }

    fn push(&mut self, s: SampleSlot) {
        if (self.inline_len as usize) < INLINE_SLOTS {
            self.inline[self.inline_len as usize] = s;
            self.inline_len += 1;
        } else {
            self.spill.push(s);
        }
    }

    fn set(&mut self, i: usize, s: SampleSlot) {
        if i < INLINE_SLOTS {
            self.inline[i] = s;
        } else {
            self.spill[i - INLINE_SLOTS] = s;
        }
    }

    fn iter(&self) -> impl Iterator<Item = &SampleSlot> {
        self.inline[..self.inline_len as usize]
            .iter()
            .chain(self.spill.iter())
    }

    fn spill_bytes(&self) -> usize {
        self.spill.capacity() * std::mem::size_of::<SampleSlot>()
    }
}

/// One open-addressing bucket: the variable id and its retained samples,
/// packed together so a probe that finds its key has already pulled the
/// samples into cache (admissions are cold by construction — a split
/// key/value layout pays two misses where this pays one).
#[derive(Debug)]
struct TableEntry {
    key: u32,
    val: VarSamples,
}

/// Open-addressing table from variable id to [`VarSamples`].
///
/// Admitted variables are a small, random subset of the id space, so a
/// dense `Vec` indexed by raw id would cost memory (and, worse, cache
/// locality) proportional to the *largest id sampled* — on sparse id
/// spaces that one allocation dwarfs the entire analysis. The table keeps
/// the footprint at O(variables actually sampled) and one probe per
/// admission in the common case.
#[derive(Debug, Default)]
struct SampleTable {
    /// Buckets; `key == u32::MAX` marks an empty one (a valid id never
    /// uses it: trace var ids are dense small integers).
    entries: Vec<TableEntry>,
    len: usize,
}

impl SampleTable {
    const EMPTY: u32 = u32::MAX;

    fn bucket(&self, key: u32) -> usize {
        // Fibonacci hashing spreads consecutive ids across the table.
        let h = (key as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> 32) as usize & (self.entries.len() - 1)
    }

    fn fresh(cap: usize) -> Vec<TableEntry> {
        (0..cap)
            .map(|_| TableEntry {
                key: Self::EMPTY,
                val: VarSamples::default(),
            })
            .collect()
    }

    /// Insert-or-get, growing at 70% load.
    fn entry(&mut self, key: u32) -> &mut VarSamples {
        if self.entries.is_empty() {
            self.entries = Self::fresh(64);
        } else if self.len * 10 >= self.entries.len() * 7 {
            self.grow();
        }
        let mut i = self.bucket(key);
        loop {
            if self.entries[i].key == key {
                return &mut self.entries[i].val;
            }
            if self.entries[i].key == Self::EMPTY {
                self.entries[i].key = key;
                self.len += 1;
                return &mut self.entries[i].val;
            }
            i = (i + 1) & (self.entries.len() - 1);
        }
    }

    fn grow(&mut self) {
        let cap = self.entries.len() * 2;
        let old = std::mem::replace(&mut self.entries, Self::fresh(cap));
        self.len = 0;
        for e in old {
            if e.key != Self::EMPTY {
                *self.entry(e.key) = e.val;
            }
        }
    }

    fn iter(&self) -> impl Iterator<Item = &VarSamples> {
        self.entries
            .iter()
            .filter(|e| e.key != Self::EMPTY)
            .map(|e| &e.val)
    }

    fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<TableEntry>()
            + self.iter().map(VarSamples::spill_bytes).sum::<usize>()
    }
}

/// A lock's shadow state: the clock stored at the last release plus the
/// releasing thread's epoch at that point.
///
/// The epoch enables FastTrack's O(1) acquire fast path: `L_m` is always a
/// whole-clock *assignment* from the releaser (`L_m := C_r`), so an
/// acquirer whose clock already covers the release epoch `(r, c)` must
/// already dominate every entry of `L_m` — per-thread clocks only grow,
/// and the only way `C_t[r] ≥ c` arises is via a synchronization chain
/// from at or after that release. The join (and its clock traffic) is
/// skipped entirely in that case, which covers re-acquisition by the same
/// thread and the acquire half of `wait`.
///
/// # The epoch-only sync summary (`lazy`)
///
/// In the default lazy mode, a release does not copy `C_t` at all: it only
/// records `rel = c@t` and marks the lock `lazy`. While lazy, the true
/// `L_m` is *represented by* the owner `t`'s live clock capped at lane `t`
/// to `c` — valid because the flush discipline below guarantees the
/// owner's clock has only grown in its **own** lane since that release
/// (which the cap undoes), so `cap(C_t_live, t→c) = C_t_at_release = L_m`.
///
/// The flush discipline: before any operation joins a *foreign* clock into
/// a thread's clock (acquire miss, join, volatile read, fork into the
/// child, barrier), that thread's lazily-owned locks are materialized via
/// [`VectorClock::assign_capped`]. Between synchronization chains — the
/// steady state of lock-dense programs — releases and re-acquires are both
/// O(1) and touch no clock at all.
struct LockState {
    /// `L_m` when `!lazy`; stale (ignored) while `lazy`.
    vc: VectorClock,
    /// The owner's pre-increment epoch at the last release.
    rel: Epoch,
    /// `true` while `L_m` is summarized by `rel` + the owner's live clock.
    lazy: bool,
    /// Monotonic stamp bumped on every release. A thread whose
    /// [`ThreadState::seen_lock`] entry equals it has already absorbed
    /// this exact `L_m` — the one-compare acquire fast path that
    /// [`Sampler::sync_fast`] runs inline in the dispatch loop.
    version: u64,
}

/// The O(1)-samples race detector.
///
/// Implements the shared [`Detector`] trait, so it is driven exactly like
/// the paper tools: per-op, per-block, or via [`Sampler::run`] (which also
/// self-measures overhead against an [`Empty`] pass over the same trace).
pub struct Sampler {
    config: SamplerConfig,
    ft_config: FastTrackConfig,
    threads: Vec<Option<ThreadState>>,
    locks: Vec<Option<LockState>>,
    volatiles: Vec<Option<VolatileClock>>,
    /// Per-thread list of lock indices this thread lazily owns (may hold
    /// stale entries after an ownership takeover; flush tolerates them).
    pending: Vec<Vec<u32>>,
    /// Reused `[FT BARRIER RELEASE]` join target.
    barrier_scratch: VectorClock,
    /// Foreign-entry join generation for the barrier epoch-rebuild skip
    /// (see `FastTrack::barrier_release` in the core crate).
    sync_gen: u64,
    /// `sync_gen` snapshot at the end of the last barrier.
    barrier_gen: u64,
    /// Participant set of the last barrier.
    barrier_parts: Vec<Tid>,
    /// Cached `!config.eager_sync`.
    lazy: bool,
    vars: SampleTable,
    warnings: Vec<Warning>,
    warned: Vec<bool>,
    stats: Stats,
    hits: RuleHits,
    pool: VcPool,
    /// Gap stream: drives admission thresholds and nothing else. Kept
    /// separate from [`Sampler::res_rng`] so admission planning consumes a
    /// deterministic draw sequence regardless of how it interleaves with
    /// sample retention — the planned-replay and per-op drivers then admit
    /// identical access sets.
    gap_rng: Prng,
    /// Reservoir stream: drives sample-replacement decisions only.
    res_rng: Prng,
    /// Cached `1 / ln(1 - rate)` for geometric gap draws.
    inv_ln_q: f64,
    /// Absolute `stats.reads` count at which the next read is admitted.
    /// A threshold compare against a counter the detector maintains anyway
    /// keeps the skip path store-free — cheaper than decrementing a gap.
    next_read_admit: u64,
    /// Absolute `stats.writes` count at which the next write is admitted.
    next_write_admit: u64,
    admitted: u64,
    admitted_reads: u64,
    admitted_writes: u64,
    evicted: u64,
    /// Filled by [`Sampler::run`]: (self nanos, empty nanos).
    measured: Option<(u128, u128)>,
}

impl Default for Sampler {
    fn default() -> Self {
        Self::new()
    }
}

impl Sampler {
    /// Creates a sampler with [`SamplerConfig::default`].
    pub fn new() -> Self {
        Self::with_config(SamplerConfig::default())
    }

    /// Creates a sampler with an explicit configuration.
    pub fn with_config(config: SamplerConfig) -> Self {
        let gap_rng = Prng::seed_from_u64(config.seed);
        let res_rng = Prng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);
        let inv_ln_q = if config.rate > 0.0 && config.rate < 1.0 {
            1.0 / (1.0 - config.rate).ln()
        } else {
            0.0
        };
        let lazy = !config.eager_sync;
        let mut sampler = Sampler {
            config,
            ft_config: FastTrackConfig::default(),
            threads: Vec::new(),
            locks: Vec::new(),
            volatiles: Vec::new(),
            pending: Vec::new(),
            barrier_scratch: VectorClock::new(),
            sync_gen: 0,
            barrier_gen: u64::MAX,
            barrier_parts: Vec::new(),
            lazy,
            vars: SampleTable::default(),
            warnings: Vec::new(),
            warned: Vec::new(),
            stats: Stats::default(),
            hits: RuleHits::default(),
            pool: VcPool::new(64),
            gap_rng,
            res_rng,
            inv_ln_q,
            next_read_admit: 0,
            next_write_admit: 0,
            admitted: 0,
            admitted_reads: 0,
            admitted_writes: 0,
            evicted: 0,
            measured: None,
        };
        // Two independent geometric admission streams (one per access kind)
        // have the same per-access admission probability as a single stream,
        // by memorylessness — and let each stream compare against a counter
        // that is already being maintained.
        sampler.next_read_admit = sampler.draw_gap().saturating_add(1);
        sampler.next_write_admit = sampler.draw_gap().saturating_add(1);
        sampler
    }

    /// The active configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// Accesses admitted for sampling so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Samples currently retained across all variables.
    pub fn samples_live(&self) -> usize {
        self.vars.iter().map(|v| v.len()).sum()
    }

    /// Samples evicted by reservoir replacement so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Worst-case shadow bytes per variable under the configured budget —
    /// a constant, independent of thread count.
    pub fn per_var_bytes(&self) -> usize {
        std::mem::size_of::<VarSamples>()
            + self.config.budget.saturating_sub(INLINE_SLOTS) * std::mem::size_of::<SampleSlot>()
    }

    /// The overhead over an EMPTY pass measured by the last [`Sampler::run`]
    /// call, in percent. `None` until `run` has been called (per-op and
    /// per-block driving cannot self-measure — the harness owns the clock
    /// there).
    pub fn measured_overhead_pct(&self) -> Option<f64> {
        self.measured.map(|(own, empty)| {
            let empty = empty.max(1) as f64;
            (own as f64 / empty - 1.0) * 100.0
        })
    }

    /// Whether the last self-measurement exceeded
    /// [`SamplerConfig::overhead_budget_pct`]. `None` until measured.
    pub fn over_budget(&self) -> Option<bool> {
        self.measured_overhead_pct()
            .map(|pct| pct > self.config.overhead_budget_pct)
    }

    /// Replays `trace`, timing both an [`Empty`] pass and the sampler's
    /// [`Sampler::replay`] pass so [`Sampler::measured_overhead_pct`] can
    /// report the overhead this configuration actually cost. The
    /// measurement never influences admission: reports stay deterministic
    /// per seed.
    pub fn run(&mut self, trace: &Trace) {
        // Virtual dispatch, not a monomorphized call: LLVM folds an inlined
        // `Empty::on_op` loop into a handful of adds, timing nothing and
        // inflating the reported overhead by orders of magnitude. `dyn`
        // keeps the per-op call — the same baseline the `ft-bench` harness
        // measures EMPTY with.
        let mut empty: Box<dyn Detector> = Box::new(Empty::new());
        let t0 = Instant::now();
        for (i, op) in trace.events().iter().enumerate() {
            empty.on_op(i, op);
        }
        let empty_ns = t0.elapsed().as_nanos();
        std::hint::black_box(empty.stats().ops);

        let t1 = Instant::now();
        self.replay(trace);
        let own_ns = t1.elapsed().as_nanos();
        self.measured = Some((own_ns, empty_ns));
    }

    /// Replays a whole trace through the skip-counting fast path.
    ///
    /// Where driving [`Detector::on_op`] pays an outlined call and four
    /// shadow-state memory updates per event, this driver keeps the access
    /// counters and both admission thresholds in locals for the whole pass
    /// — the non-admitted access path is a register increment and compare
    /// with no loop-carried memory dependency, cheaper than even an EMPTY
    /// per-op pass. State is committed back only at admission points (so
    /// the admission slow path sees exact counts) and once at the end. This is
    /// the replay analog of how sampling detectors remove instrumentation
    /// from cold paths entirely (LiteRace's duplicated uninstrumented
    /// regions).
    ///
    /// Warnings, stats, and admission decisions are identical to driving
    /// [`Detector::on_op`] over the same trace — the gap and reservoir
    /// RNG streams are consumed in the same order by both drivers.
    pub fn replay(&mut self, trace: &Trace) {
        let events = trace.events();
        let mut reads = self.stats.reads;
        let mut writes = self.stats.writes;
        let mut next_r = self.next_read_admit;
        let mut next_w = self.next_write_admit;
        for (i, op) in events.iter().enumerate() {
            // Branchless counter updates: a per-arm `match` mispredicts on
            // every irregular read/write mix, which alone costs more than
            // the whole EMPTY pass. Only two rarely-taken branches remain —
            // "is this synchronization" and "did a stream hit its
            // admission threshold" — both predictable on access-dense
            // traces.
            let is_read = matches!(op, Op::Read(..));
            let is_write = matches!(op, Op::Write(..));
            reads += is_read as u64;
            writes += is_write as u64;
            if !(is_read | is_write) {
                if !self.sync_fast(op) {
                    self.sync_op(op);
                }
                continue;
            }
            if (reads == next_r) | (writes == next_w) {
                // Equality can only hold on the stream the current access
                // just advanced (prior hits were consumed by a redraw), so
                // the admitted kind is the current op's kind.
                let (t, x, kind) = match op {
                    Op::Read(t, x) => (*t, *x, AccessKind::Read),
                    Op::Write(t, x) => (*t, *x, AccessKind::Write),
                    _ => unreachable!("access checked above"),
                };
                self.stats.reads = reads;
                self.stats.writes = writes;
                self.redraw(kind);
                self.admit(i, t, x, kind);
                next_r = self.next_read_admit;
                next_w = self.next_write_admit;
            }
        }
        self.stats.reads = reads;
        self.stats.writes = writes;
        self.stats.ops += events.len() as u64;
    }

    /// Draws the number of accesses to skip before the next admission:
    /// geometric with success probability `rate` (`inv_ln_q` caches
    /// `1 / ln(1 - rate)` so each draw costs a single `ln`).
    fn draw_gap(&mut self) -> u64 {
        if self.config.rate >= 1.0 {
            return 0;
        }
        if self.config.rate <= 0.0 {
            return u64::MAX;
        }
        let u = self.gap_rng.next_f64();
        // Inverse-CDF of the geometric distribution; `1 - u` avoids ln(0).
        let g = ((1.0 - u).ln() * self.inv_ln_q).floor();
        if g.is_finite() && g >= 0.0 {
            g as u64
        } else {
            0
        }
    }

    /// Field-scoped thread lookup so callers can hold the returned
    /// `&mut ThreadState` while still reading the (disjoint) lock and
    /// volatile tables — one bounds check instead of the
    /// ensure-then-reindex double lookup.
    #[inline]
    fn ensure_thread(threads: &mut Vec<Option<ThreadState>>, t: Tid) -> &mut ThreadState {
        let idx = t.as_usize();
        if idx >= threads.len() {
            threads.resize_with(idx + 1, || None);
        }
        threads[idx].get_or_insert_with(|| ThreadState::new(t))
    }

    fn thread(&mut self, t: Tid) -> &mut ThreadState {
        Self::ensure_thread(&mut self.threads, t)
    }

    /// Redraws the admission threshold for `kind`'s stream from the
    /// current committed counter. Callers must redraw immediately on a
    /// threshold hit — that re-establishes the `threshold > counter`
    /// invariant the drivers rely on (equality can only arise on the
    /// stream the current access advanced).
    fn redraw(&mut self, kind: AccessKind) {
        let jump = self.draw_gap().saturating_add(1);
        match kind {
            AccessKind::Read => {
                self.next_read_admit = self.stats.reads.saturating_add(jump);
            }
            AccessKind::Write => {
                self.next_write_admit = self.stats.writes.saturating_add(jump);
            }
        }
    }

    /// Split borrow into the thread slab: mutable `dst`, shared `src`.
    /// Both slots must be ensured and distinct.
    #[inline]
    fn thread_pair(
        threads: &mut [Option<ThreadState>],
        dst: usize,
        src: usize,
    ) -> (&mut ThreadState, &ThreadState) {
        debug_assert_ne!(dst, src);
        if dst < src {
            let (lo, hi) = threads.split_at_mut(src);
            (
                lo[dst].as_mut().expect("ensured"),
                hi[0].as_ref().expect("ensured"),
            )
        } else {
            let (lo, hi) = threads.split_at_mut(dst);
            (
                hi[0].as_mut().expect("ensured"),
                lo[src].as_ref().expect("ensured"),
            )
        }
    }

    /// `C_t := incₜ(C_t)`, epoch-only: bumps the cached epoch scalar and
    /// leaves the vector-clock lane stale. Between synchronization chains
    /// the sampler keeps each thread's own component as this scalar alone —
    /// the per-release `vc.inc` + `epoch_of` round trip is the single
    /// hottest instruction sequence on sync-dense traces. The lane is
    /// written back by [`Sampler::sync_own_lane`] before anything actually
    /// reads `C_t`.
    ///
    /// This deliberately breaks [`ThreadState`]'s `epoch == vc.epoch_of(tid)`
    /// invariant *inside the sampler only*: here `epoch` is authoritative
    /// and `vc`'s own lane lags it. Foreign lanes of `vc` are always exact.
    #[inline]
    fn bump_epoch(ts: &mut ThreadState) {
        ts.epoch = Epoch::new(ts.tid, ts.epoch.clock() + 1);
    }

    /// Writes the authoritative epoch scalar back into `C_t`'s own lane.
    /// Required before `C_t` is read as a join source, before
    /// `refresh_epoch` (which would otherwise regress the epoch to the
    /// stale lane), and before admission borrows the clock. NOT required
    /// before [`Sampler::flush`] or a lazy-lock `join_capped`: both cap the
    /// owner's lane back to the release clock, overwriting whatever was
    /// there.
    #[inline]
    fn sync_own_lane(ts: &mut ThreadState) {
        ts.vc.set(ts.tid, ts.epoch.clock());
    }

    /// Materializes every lock thread `t` still lazily owns (see
    /// [`LockState`]): `L_m := cap(C_t, t → rel)` via
    /// [`VectorClock::assign_capped`]. Must run before any foreign clock is
    /// joined into `C_t` — acquire miss, join, volatile read, fork into
    /// `t`, barrier — because after that the cap argument no longer
    /// reconstructs the release-time clock. Entries whose lock was taken
    /// over by another releaser are stale and skipped.
    #[inline]
    fn flush(&mut self, t: Tid) {
        let idx = t.as_usize();
        if idx >= self.pending.len() || self.pending[idx].is_empty() {
            return;
        }
        self.flush_slow(t);
    }

    /// The non-empty-pending-list half of [`flush`](Self::flush).
    #[inline(never)]
    fn flush_slow(&mut self, t: Tid) {
        let idx = t.as_usize();
        let mut pend = std::mem::take(&mut self.pending[idx]);
        let ts = self.threads[idx].as_ref().expect("owner exists");
        for m in pend.drain(..) {
            if let Some(Some(lk)) = self.locks.get_mut(m as usize) {
                if lk.lazy && lk.rel.tid() == t {
                    self.stats.vc_ops += 1; // the deferred O(n) copy
                    lk.vc.assign_capped(&ts.vc, t, lk.rel.clock());
                    lk.lazy = false;
                }
            }
        }
        self.pending[idx] = pend; // hand the emptied Vec's capacity back
    }

    /// Records that thread `t` lazily owns lock `m`, flushing first when
    /// the pending list is full (a bound on stale-entry accumulation under
    /// ownership ping-pong; real programs stay far below it).
    fn note_pending(&mut self, t: Tid, m: usize) {
        const PENDING_CAP: usize = 64;
        let idx = t.as_usize();
        if idx >= self.pending.len() {
            self.pending.resize_with(idx + 1, Vec::new);
        }
        if self.pending[idx].len() >= PENDING_CAP {
            self.flush(t);
        }
        self.pending[idx].push(m as u32);
    }

    /// `[FT ACQUIRE]`: `C_t := C_t ⊔ L_m`, with the O(1) release-epoch
    /// fast path (see [`LockState`]) when the acquirer is already ordered
    /// after the last release. The fast path is valid in lazy mode too:
    /// while lazy, the true `L_m` equals the owner's release-time clock,
    /// which the release epoch summarizes exactly as in the eager case.
    ///
    /// A never-released lock has no happens-before effect, so the handler
    /// returns before even touching the thread table in that case —
    /// [`ThreadState`] construction is deterministic and can happen at
    /// whichever op first needs it.
    fn acquire(&mut self, t: Tid, m: LockId) {
        let idx = m.as_usize();
        let Some(Some(lk)) = self.locks.get(idx) else {
            return;
        };
        let ts = Self::ensure_thread(&mut self.threads, t);
        // The version-stamp check also covers re-acquiring a lock this
        // thread last released (its own lane in `vc` may lag `epoch`, so
        // the `rel ⊑ C_t` test could spuriously miss there).
        if ts.seen_lock(idx) == lk.version || lk.rel.happens_before(&ts.vc) {
            self.stats.sync_fastpath_hits += 1;
            ts.note_lock(idx, lk.version);
            return;
        }
        self.stats.sync_slow_joins += 1;
        self.acquire_slow(t, idx);
    }

    /// The acquire miss path: a genuine `C_t ⊔ L_m` join. Outlined so the
    /// inline dispatcher stays small; callers have already counted the op
    /// and the slow join.
    #[inline(never)]
    fn acquire_slow(&mut self, t: Tid, idx: usize) {
        // The join mutates C_t with foreign entries, so t's own lazy locks
        // must be written out first. The lock being acquired is never
        // among them: a lazy lock owned by t would have hit the fast path
        // (its last releaser was t, so the stamp matches).
        let ts = self.threads[t.as_usize()].as_mut().expect("caller ensured");
        Self::sync_own_lane(ts);
        self.flush(t);
        self.stats.vc_ops += 1;
        self.sync_gen += 1;
        let lk = self.locks[idx].as_ref().expect("caller checked");
        let version = lk.version;
        if lk.lazy {
            // Join the owner's live clock with its own lane capped back to
            // the release epoch — exactly L_m, with no clone and no
            // materialization (the lock stays lazy for its owner).
            let (r, c) = (lk.rel.tid(), lk.rel.clock());
            let (ts, owner) = Self::thread_pair(&mut self.threads, t.as_usize(), r.as_usize());
            ts.vc.join_capped(&owner.vc, r, c);
            ts.refresh_epoch();
            ts.note_lock(idx, version);
        } else {
            let ts = self.threads[t.as_usize()].as_mut().expect("ensured");
            ts.vc.join(&lk.vc);
            ts.refresh_epoch();
            ts.note_lock(idx, version);
        }
    }

    /// `[FT RELEASE]`: `L_m := C_t; C_t := incₜ(C_t)`.
    ///
    /// In lazy mode (the default) the clock copy is deferred: the release
    /// records only the pre-increment epoch. Re-releasing a lock this
    /// thread already lazily owns — the steady state of a lock-dense loop —
    /// is a pure O(1) renewal with no clock traffic at all. In eager mode
    /// the pre-lazy per-release O(n) copy runs unchanged.
    fn release(&mut self, t: Tid, m: LockId) {
        let idx = m.as_usize();
        let ts = Self::ensure_thread(&mut self.threads, t);
        let rel = ts.epoch;
        if self.lazy {
            match self.locks.get_mut(idx) {
                Some(Some(lk)) if lk.lazy && lk.rel.tid() == t => {
                    // O(1) renewal; already in t's pending list.
                    lk.rel = rel;
                    lk.version += 1;
                    ts.note_lock(idx, lk.version);
                    Self::bump_epoch(ts);
                }
                Some(Some(lk)) => {
                    // Takeover (or re-lazying a materialized lock): the old
                    // owner's pending entry, if any, goes stale.
                    lk.rel = rel;
                    lk.lazy = true;
                    lk.version += 1;
                    ts.note_lock(idx, lk.version);
                    Self::bump_epoch(ts);
                    self.note_pending(t, idx);
                }
                _ => {
                    // First release: the logical L_m allocation (Table 2
                    // semantics) — the placeholder clock stays empty until
                    // a flush materializes it.
                    ts.note_lock(idx, 1);
                    Self::bump_epoch(ts);
                    self.stats.vc_allocated += 1;
                    if idx >= self.locks.len() {
                        self.locks.resize_with(idx + 1, || None);
                    }
                    self.locks[idx] = Some(LockState {
                        vc: VectorClock::new(),
                        rel,
                        lazy: true,
                        version: 1,
                    });
                    self.note_pending(t, idx);
                }
            }
            return;
        }
        Self::sync_own_lane(ts);
        self.stats.vc_ops += 1;
        match self.locks.get_mut(idx) {
            Some(Some(lk)) => {
                lk.vc.assign(&ts.vc);
                lk.rel = rel;
                lk.lazy = false;
                lk.version += 1;
                ts.note_lock(idx, lk.version);
            }
            Some(slot @ None) => {
                self.stats.vc_allocated += 1;
                ts.note_lock(idx, 1);
                *slot = Some(LockState {
                    vc: ts.vc.clone(),
                    rel,
                    lazy: false,
                    version: 1,
                });
            }
            None => {
                self.stats.vc_allocated += 1;
                ts.note_lock(idx, 1);
                let vc = ts.vc.clone();
                self.locks.resize_with(idx + 1, || None);
                self.locks[idx] = Some(LockState {
                    vc,
                    rel,
                    lazy: false,
                    version: 1,
                });
            }
        }
        let ts = self.threads[t.as_usize()].as_mut().expect("ensured");
        Self::bump_epoch(ts);
    }

    /// `[FT FORK]`: `C_u := C_u ⊔ C_t; C_t := incₜ(C_t)` — clone-free, and
    /// the *child*'s lazy locks flush first (its clock gains foreign
    /// entries; the parent's clock is only read).
    fn fork(&mut self, t: Tid, u: Tid) {
        self.thread(t);
        self.thread(u);
        self.flush(u);
        self.stats.vc_ops += 1;
        if t != u {
            self.sync_gen += 1;
            // Both own lanes must be exact: `t`'s because `u` absorbs it,
            // `u`'s because the join below feeds `refresh_epoch`.
            Self::sync_own_lane(self.threads[t.as_usize()].as_mut().expect("ensured"));
            let (us, ct) = Self::thread_pair(&mut self.threads, u.as_usize(), t.as_usize());
            Self::sync_own_lane(us);
            us.vc.join(&ct.vc);
            us.refresh_epoch();
        }
        let ts = self.threads[t.as_usize()].as_mut().expect("ensured");
        Self::bump_epoch(ts);
    }

    /// `[FT JOIN]`: `C_t := C_t ⊔ C_u; C_u := inc_u(C_u)` — clone-free; the
    /// joiner's lazy locks flush first.
    fn join(&mut self, t: Tid, u: Tid) {
        self.thread(t);
        self.thread(u);
        self.flush(t);
        self.stats.vc_ops += 1;
        if t != u {
            self.sync_gen += 1;
            // Both own lanes must be exact: `u`'s because `t` absorbs it,
            // `t`'s because the join below feeds `refresh_epoch`.
            Self::sync_own_lane(self.threads[u.as_usize()].as_mut().expect("ensured"));
            let (ts, cu) = Self::thread_pair(&mut self.threads, t.as_usize(), u.as_usize());
            Self::sync_own_lane(ts);
            ts.vc.join(&cu.vc);
            ts.refresh_epoch();
        }
        let us = self.threads[u.as_usize()].as_mut().expect("ensured");
        Self::bump_epoch(us);
    }

    /// `[FT READ VOLATILE]`: `C_t := C_t ⊔ L_vx` (§4). No release-epoch
    /// shortcut exists (a volatile's clock is a *join* of every writer),
    /// but the seen-version stamp skips a re-join of an unchanged clock.
    fn volatile_read(&mut self, t: Tid, x: VarId) {
        let idx = x.as_usize();
        let Some(Some(lv)) = self.volatiles.get(idx) else {
            return;
        };
        let ts = Self::ensure_thread(&mut self.threads, t);
        if ts.seen_volatile(idx) == lv.version {
            self.stats.sync_fastpath_hits += 1;
            return;
        }
        self.stats.sync_slow_joins += 1;
        self.flush(t); // C_t is about to gain foreign entries
        self.stats.vc_ops += 1;
        self.sync_gen += 1;
        let lv = self.volatiles[idx].as_ref().expect("checked above");
        let ts = self.threads[t.as_usize()].as_mut().expect("ensured");
        Self::sync_own_lane(ts); // the join below feeds refresh_epoch
        ts.vc.join(&lv.vc);
        ts.refresh_epoch();
        ts.note_volatile(idx, lv.version);
    }

    /// `[FT WRITE VOLATILE]`: `L_vx := C_t ⊔ L_vx; C_t := incₜ(C_t)` (§4).
    /// No flush: the writer's clock is only read, then bumped in its own
    /// lane.
    fn volatile_write(&mut self, t: Tid, x: VarId) {
        let idx = x.as_usize();
        if idx >= self.volatiles.len() {
            self.volatiles.resize_with(idx + 1, || None);
        }
        let ts = Self::ensure_thread(&mut self.threads, t);
        Self::sync_own_lane(ts); // C_t is read as a join source below
        self.stats.vc_ops += 1;
        match &mut self.volatiles[idx] {
            Some(lv) => {
                lv.vc.join(&ts.vc);
                lv.version += 1;
            }
            slot @ None => {
                self.stats.vc_allocated += 1;
                *slot = Some(VolatileClock::new(ts.vc.clone()));
            }
        }
        Self::bump_epoch(ts);
    }

    /// `[FT BARRIER RELEASE]`: every `t ∈ T` gets
    /// `C_t := incₜ(⊔_{u∈T} C_u)` (§4). Every participant's clock is
    /// overwritten with foreign entries, so all participants flush first;
    /// the join target is the detector-lifetime scratch clock.
    ///
    /// In the steady state (same participants, no foreign-entry joins since
    /// the previous barrier) the joined clock is rebuilt from per-thread
    /// epochs in O(|T|) lane writes — see `FastTrack::barrier_release` in
    /// the core crate for the argument; the sampler's own-lane-lazy clocks
    /// make the epoch (not the clock lane) the authoritative own-lane
    /// value, which is exactly what the rebuild reads.
    fn barrier_release(&mut self, threads: &[Tid]) {
        let epoch_rebuild = self.barrier_gen == self.sync_gen
            && self.barrier_parts == threads
            && !threads.is_empty();
        let mut joined = std::mem::take(&mut self.barrier_scratch);
        if epoch_rebuild {
            self.stats.sync_fastpath_hits += 1;
            for &u in threads {
                // The assign below overwrites C_u with foreign entries, so
                // u's lazy locks must still freeze first.
                self.flush(u);
                let e = self.threads[u.as_usize()]
                    .as_ref()
                    .expect("participant")
                    .epoch;
                joined.set(u, e.clock());
            }
        } else {
            joined.clear();
            for &u in threads {
                self.thread(u);
                self.flush(u);
                self.stats.vc_ops += 1;
                let us = self.threads[u.as_usize()].as_mut().expect("ensured");
                Self::sync_own_lane(us); // C_u is a join source
                joined.join(&us.vc);
            }
        }
        for &t in threads {
            self.stats.vc_ops += 1;
            let ts = self.threads[t.as_usize()].as_mut().expect("ensured");
            ts.vc.assign(&joined);
            ts.inc();
        }
        self.barrier_scratch = joined;
        self.barrier_gen = self.sync_gen;
        if self.barrier_parts != threads {
            self.barrier_parts.clear();
            self.barrier_parts.extend_from_slice(threads);
        }
    }

    /// The inline sync fast lane: handles the two overwhelmingly common
    /// sync shapes — re-acquiring a lock whose release the thread already
    /// absorbed (one version-stamp compare) and renewing a lazy release the
    /// thread already owns (epoch + stamp store) — without leaving the
    /// dispatch loop. Returns `false` to route everything else (stamp
    /// misses, first releases, forks/joins/volatiles/barriers) to the
    /// outlined [`sync_op`](Self::sync_op) path.
    ///
    /// The acquire arm is sound because a matching stamp means the thread's
    /// clock already dominates this exact `L_m` (it noted the version when
    /// it last joined or produced it), so `C_t ⊔ L_m = C_t`. The release
    /// arm is the same O(1) renewal as [`release`](Self::release)'s first
    /// match arm, minus the dispatch.
    #[inline]
    fn sync_fast(&mut self, op: &Op) -> bool {
        match *op {
            Op::Acquire(t, m) => {
                let idx = m.as_usize();
                let Some(Some(lk)) = self.locks.get(idx) else {
                    // Never released: L_m is ⊥ and the join is a no-op.
                    self.stats.sync_ops += 1;
                    return true;
                };
                let Some(Some(ts)) = self.threads.get_mut(t.as_usize()) else {
                    return false;
                };
                self.stats.sync_ops += 1;
                if ts.seen_lock(idx) == lk.version {
                    self.stats.sync_fastpath_hits += 1;
                    return true;
                }
                if lk.rel.happens_before(&ts.vc) {
                    self.stats.sync_fastpath_hits += 1;
                    ts.note_lock(idx, lk.version);
                    return true;
                }
                // Genuine join: go straight to the outlined miss path
                // instead of re-dispatching (and re-testing) via `sync_op`.
                self.stats.sync_slow_joins += 1;
                self.acquire_slow(t, idx);
                true
            }
            Op::Release(t, m) => {
                // Any lazy-mode release of an existing lock is O(1): a
                // renewal keeps the owner, a takeover just moves the
                // epoch/owner and leaves the previous owner's pending entry
                // to go stale (version mismatch). Only the very first
                // release of a lock (the L_m allocation) and eager-mode
                // releases need the outlined path.
                if !self.lazy {
                    return false;
                }
                let idx = m.as_usize();
                let Some(Some(lk)) = self.locks.get_mut(idx) else {
                    return false;
                };
                let Some(Some(ts)) = self.threads.get_mut(t.as_usize()) else {
                    return false;
                };
                let renewal = lk.lazy && lk.rel.tid() == t;
                lk.rel = ts.epoch;
                lk.version += 1;
                lk.lazy = true;
                ts.note_lock(idx, lk.version);
                Self::bump_epoch(ts);
                self.stats.sync_ops += 1;
                if !renewal {
                    self.note_pending(t, idx);
                }
                true
            }
            _ => false,
        }
    }

    /// The outlined sync-op path: full FastTrack vector-clock maintenance,
    /// so the clocks consulted on admission are always exact.
    #[inline(never)]
    fn sync_op(&mut self, op: &Op) {
        match *op {
            Op::Acquire(t, m) => {
                self.stats.sync_ops += 1;
                self.acquire(t, m);
            }
            Op::Release(t, m) => {
                self.stats.sync_ops += 1;
                self.release(t, m);
            }
            Op::Fork(t, u) => {
                self.stats.sync_ops += 1;
                self.fork(t, u);
            }
            Op::Join(t, u) => {
                self.stats.sync_ops += 1;
                self.join(t, u);
            }
            Op::VolatileRead(t, x) => {
                self.stats.sync_ops += 1;
                self.volatile_read(t, x);
            }
            Op::VolatileWrite(t, x) => {
                self.stats.sync_ops += 1;
                self.volatile_write(t, x);
            }
            Op::Wait(t, m) => {
                // §4: wait = release + subsequent acquire.
                self.stats.sync_ops += 1;
                self.release(t, m);
                self.acquire(t, m);
            }
            Op::BarrierRelease(ref ts) => {
                self.stats.sync_ops += 1;
                self.barrier_release(ts);
            }
            Op::Notify(..) | Op::AtomicBegin(_) | Op::AtomicEnd(_) => {
                // No happens-before effect (§4).
            }
            Op::Read(..) | Op::Write(..) => unreachable!("handled inline"),
        }
    }

    /// The admission slow path: check the current access against the
    /// variable's retained samples via the real Figure 5 rules, then retain
    /// it (reservoir replacement once the budget is full). Allocation-free
    /// on the raceless path: the scratch states live on the stack and the
    /// thread clock is borrowed, not cloned.
    #[inline(never)]
    fn admit(&mut self, index: usize, t: Tid, x: VarId, kind: AccessKind) {
        self.admitted += 1;
        match kind {
            AccessKind::Read => self.admitted_reads += 1,
            AccessKind::Write => self.admitted_writes += 1,
        }
        let budget = self.config.budget;
        if budget == 0 {
            return;
        }
        self.thread(t);

        // Replay the access against each retained conflicting sample through
        // `fasttrack::rules`, on a scratch single-sample VarState. The
        // scratch state never inflates to READ_SHARED (its read history is a
        // single epoch), so these calls allocate nothing. Races found are
        // staged locally because `report` needs `&mut self`; the buffer only
        // allocates when a race is actually present.
        let ts = self.threads[t.as_usize()].as_mut().expect("ensured");
        Self::sync_own_lane(ts); // rules below borrow C_t; its own lane may lag
        let ts = self.threads[t.as_usize()].as_ref().expect("ensured");
        let epoch = ts.epoch;
        let mut races: Vec<(WarningKind, Epoch, AccessKind, &'static str)> = Vec::new();
        let var = self.vars.entry(x.as_u32());
        for slot in var.iter() {
            match kind {
                AccessKind::Read => {
                    if !slot.write {
                        continue; // read-read pairs never conflict
                    }
                    let mut vs = VarState::default();
                    vs.set_w(slot.epoch);
                    let out = rules::read_var(
                        &mut vs,
                        t,
                        epoch,
                        &ts.vc,
                        &self.ft_config,
                        &mut self.pool,
                        &mut self.stats,
                    );
                    self.hits.hit_read(out.rule);
                    if let Some(w) = out.racy_write {
                        races.push((
                            WarningKind::WriteRead,
                            w,
                            AccessKind::Write,
                            out.rule.name(),
                        ));
                    }
                }
                AccessKind::Write => {
                    let mut vs = VarState::default();
                    if slot.write {
                        vs.set_w(slot.epoch);
                    } else {
                        vs.set_r(slot.epoch);
                    }
                    let out = rules::write_var(
                        &mut vs,
                        epoch,
                        &ts.vc,
                        &self.ft_config,
                        &mut self.pool,
                        &mut self.stats,
                    );
                    self.hits.hit_write(out.rule);
                    if let Some(w) = out.racy_write {
                        races.push((
                            WarningKind::WriteWrite,
                            w,
                            AccessKind::Write,
                            out.rule.name(),
                        ));
                    }
                    if let Some(r) = out.racy_read {
                        races.push((WarningKind::ReadWrite, r, AccessKind::Read, out.rule.name()));
                    }
                }
            }
        }
        // Retain the access: push while under budget, then reservoir-replace
        // so every admitted access has equal probability of survival.
        var.seen += 1;
        let sample = SampleSlot {
            epoch,
            write: kind == AccessKind::Write,
        };
        if var.len() < budget {
            var.push(sample);
        } else {
            let j = self.res_rng.gen_range(0..var.seen as usize);
            if j < budget {
                var.set(j, sample);
                self.evicted += 1;
            }
        }

        if !races.is_empty() {
            let vc = self.threads[t.as_usize()]
                .as_ref()
                .expect("ensured")
                .vc
                .clone();
            for (warn_kind, conflict, prior_kind, rule) in races {
                self.report(
                    index, x, warn_kind, conflict, prior_kind, t, kind, epoch, &vc, rule,
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &mut self,
        index: usize,
        x: VarId,
        kind: WarningKind,
        conflict: Epoch,
        prior_kind: AccessKind,
        t: Tid,
        current_kind: AccessKind,
        current_epoch: Epoch,
        vc: &VectorClock,
        rule: &'static str,
    ) {
        let idx = x.as_usize();
        if idx >= self.warned.len() {
            self.warned.resize(idx + 1, false);
        }
        if self.warned[idx] && !self.config.report_all {
            return;
        }
        self.warned[idx] = true;
        let (prior_write, prior_reads) = match prior_kind {
            AccessKind::Write => (conflict, ReadHistory::None),
            AccessKind::Read => (Epoch::MIN, ReadHistory::Epoch(conflict)),
        };
        self.warnings.push(Warning {
            var: x,
            kind,
            prior: AccessSummary {
                tid: conflict.tid(),
                kind: prior_kind,
                event_index: None,
            },
            current: AccessSummary {
                tid: t,
                kind: current_kind,
                event_index: Some(index),
            },
            provenance: Some(Provenance {
                rule,
                conflict,
                current_epoch,
                thread_clock: vc.iter_nonzero().collect(),
                prior_write,
                prior_reads,
                recent: Vec::new(),
            }),
        });
    }
}

impl Detector for Sampler {
    fn name(&self) -> &'static str {
        "SAMPLER"
    }

    #[inline]
    // The whole point of the tier is that this costs what EMPTY's dispatch
    // costs: a counter bump and one predictable threshold compare per
    // non-admitted access, in a body small enough that the call itself
    // dominates — exactly like EMPTY's. Admission and synchronization live
    // behind `#[inline(never)]` outlined paths to keep it that way.
    fn on_op(&mut self, index: usize, op: &Op) -> Disposition {
        self.stats.ops += 1;
        match *op {
            Op::Read(t, x) => {
                self.stats.reads += 1;
                if self.stats.reads == self.next_read_admit {
                    self.redraw(AccessKind::Read);
                    self.admit(index, t, x, AccessKind::Read);
                }
            }
            Op::Write(t, x) => {
                self.stats.writes += 1;
                if self.stats.writes == self.next_write_admit {
                    self.redraw(AccessKind::Write);
                    self.admit(index, t, x, AccessKind::Write);
                }
            }
            _ => {
                if !self.sync_fast(op) {
                    self.sync_op(op);
                }
            }
        }
        Disposition::Forward
    }

    fn warnings(&self) -> &[Warning] {
        &self.warnings
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn shadow_bytes(&self) -> usize {
        let vars = self.vars.heap_bytes();
        let threads: usize = self
            .threads
            .iter()
            .flatten()
            .map(|ts| std::mem::size_of::<ThreadState>() + ts.vc.heap_bytes() + ts.seen_bytes())
            .sum();
        let locks: usize = self
            .locks
            .iter()
            .flatten()
            .map(|lk| std::mem::size_of::<LockState>() + lk.vc.heap_bytes())
            .sum();
        let syncs: usize = self
            .volatiles
            .iter()
            .flatten()
            .map(|lv| std::mem::size_of::<VolatileClock>() + lv.vc.heap_bytes())
            .sum::<usize>()
            + locks;
        let pending: usize = self
            .pending
            .iter()
            .map(|p| p.capacity() * std::mem::size_of::<u32>())
            .sum();
        vars + threads + syncs + pending
    }

    fn rule_breakdown(&self) -> Vec<fasttrack::RuleCount> {
        self.hits
            .breakdown(self.admitted_reads, self.admitted_writes)
    }

    fn metrics(&self) -> Snapshot {
        let mut reg = base_registry(self);
        reg.inc_counter("sampler.admitted", self.admitted);
        reg.inc_counter("sampler.evicted", self.evicted);
        reg.inc_counter("sampler.races_caught", self.warnings.len() as u64);
        reg.set_gauge("sampler.samples_live", self.samples_live() as f64);
        reg.set_gauge("sampler.budget", self.config.budget as f64);
        reg.set_gauge("sampler.rate", self.config.rate);
        reg.set_gauge("sampler.per_var_bytes", self.per_var_bytes() as f64);
        reg.set_gauge(
            "sampler.overhead_budget_pct",
            self.config.overhead_budget_pct,
        );
        if let Some(pct) = self.measured_overhead_pct() {
            reg.set_gauge("sampler.overhead_pct", pct);
            reg.set_gauge(
                "sampler.over_budget",
                if pct > self.config.overhead_budget_pct {
                    1.0
                } else {
                    0.0
                },
            );
        }
        reg.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_trace::TraceBuilder;

    const T0: Tid = Tid::new(0);
    const T1: Tid = Tid::new(1);
    const X: VarId = VarId::new(0);

    fn ww_race_trace() -> Trace {
        let mut b = TraceBuilder::with_threads(2);
        b.write(T0, X).unwrap();
        b.write(T1, X).unwrap();
        b.finish()
    }

    #[test]
    fn rate_one_catches_the_race() {
        let mut s = Sampler::with_config(SamplerConfig::default().with_rate(1.0));
        s.run(&ww_race_trace());
        assert_eq!(s.warnings().len(), 1);
        assert_eq!(s.warnings()[0].kind, WarningKind::WriteWrite);
        assert_eq!(s.warnings()[0].var, X);
        assert!(s.warnings()[0].provenance.is_some());
    }

    #[test]
    fn budget_zero_reports_nothing_and_survives() {
        let mut s = Sampler::with_config(SamplerConfig::default().with_rate(1.0).with_budget(0));
        s.run(&ww_race_trace());
        assert!(s.warnings().is_empty());
        assert_eq!(s.samples_live(), 0);
        assert!(s.admitted() > 0);
    }

    #[test]
    fn rate_zero_admits_nothing() {
        let mut s = Sampler::with_config(SamplerConfig::default().with_rate(0.0));
        s.run(&ww_race_trace());
        assert_eq!(s.admitted(), 0);
        assert!(s.warnings().is_empty());
    }

    #[test]
    fn synchronized_writes_do_not_warn() {
        let m = LockId::new(0);
        let mut b = TraceBuilder::with_threads(2);
        b.push(Op::Acquire(T0, m)).unwrap();
        b.write(T0, X).unwrap();
        b.push(Op::Release(T0, m)).unwrap();
        b.push(Op::Acquire(T1, m)).unwrap();
        b.write(T1, X).unwrap();
        b.push(Op::Release(T1, m)).unwrap();
        let trace = b.finish();
        let mut s = Sampler::with_config(SamplerConfig::default().with_rate(1.0));
        s.run(&trace);
        assert!(s.warnings().is_empty(), "{:?}", s.warnings());
    }

    #[test]
    fn fork_join_ordering_is_respected() {
        let mut b = TraceBuilder::new();
        b.write(T0, X).unwrap();
        b.push(Op::Fork(T0, T1)).unwrap();
        b.write(T1, X).unwrap();
        b.push(Op::Join(T0, T1)).unwrap();
        b.write(T0, X).unwrap();
        let trace = b.finish();
        let mut s = Sampler::with_config(SamplerConfig::default().with_rate(1.0));
        s.run(&trace);
        assert!(s.warnings().is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let trace = ww_race_trace();
        let cfg = SamplerConfig::default().with_rate(0.5).with_seed(99);
        let mut a = Sampler::with_config(cfg.clone());
        let mut b = Sampler::with_config(cfg);
        a.run(&trace);
        b.run(&trace);
        assert_eq!(a.warnings(), b.warnings());
        assert_eq!(a.admitted(), b.admitted());
    }

    #[test]
    fn per_var_bytes_is_thread_count_independent() {
        let cfg = SamplerConfig::default().with_budget(4);
        let few = Sampler::with_config(cfg.clone());
        let bytes = few.per_var_bytes();
        // Feed a trace with many threads hammering one variable; the per-var
        // constant must not move (unlike a vector-clock read history).
        let n = 32;
        let mut b = TraceBuilder::with_threads(n);
        for t in 0..n {
            b.read(Tid::new(t), X).unwrap();
        }
        let trace = b.finish();
        let mut s = Sampler::with_config(cfg.with_rate(1.0));
        s.run(&trace);
        assert_eq!(s.per_var_bytes(), bytes);
        assert!(s.samples_live() <= 4);
    }

    #[test]
    fn self_measurement_reports_after_run() {
        let mut s = Sampler::new();
        s.run(&ww_race_trace());
        assert!(s.measured_overhead_pct().is_some());
        assert!(s.over_budget().is_some());
    }

    #[test]
    fn metrics_expose_sampler_counters() {
        let mut s = Sampler::with_config(SamplerConfig::default().with_rate(1.0));
        s.run(&ww_race_trace());
        let snap = s.metrics();
        let json = snap.to_json();
        assert!(json.contains("sampler.admitted"));
        assert!(json.contains("sampler.samples_live"));
        assert!(json.contains("sampler.races_caught"));
    }

    #[test]
    fn lazy_and_eager_sync_agree_bit_for_bit() {
        // The epoch-only sync summary must be observationally identical to
        // eager per-release clock copies: same warnings (order included),
        // same admissions, same rule breakdown — across sync-dense shapes.
        use ft_trace::gen::{chaotic, generate, GenConfig};
        let mut shapes: Vec<Trace> = Vec::new();
        for seed in 0..24 {
            shapes.push(generate(
                &GenConfig {
                    threads: 4,
                    vars: 16,
                    locks: 4,
                    ops: 1500,
                    accesses_per_cs: 1,
                    p_barrier: 0.02,
                    p_volatile: 0.05,
                    ..GenConfig::default()
                },
                seed,
            ));
            shapes.push(chaotic(4, 12, 3, 1200, 1000 + seed));
        }
        for (i, trace) in shapes.iter().enumerate() {
            let cfg = SamplerConfig::default().with_rate(1.0).with_seed(7);
            let mut lazy = Sampler::with_config(cfg.clone().with_eager_sync(false));
            let mut eager = Sampler::with_config(cfg.with_eager_sync(true));
            lazy.run(trace);
            eager.run(trace);
            assert_eq!(lazy.warnings(), eager.warnings(), "shape {i}");
            assert_eq!(lazy.admitted(), eager.admitted(), "shape {i}");
            assert_eq!(lazy.rule_breakdown(), eager.rule_breakdown(), "shape {i}");
        }
    }

    #[test]
    fn lazy_release_renewal_does_no_clock_work() {
        // One thread hammering its own lock: after the first release, every
        // acquire fast-hits and every release is an O(1) epoch renewal —
        // zero vector-clock operations for the whole loop.
        let m = LockId::new(0);
        let mut b = TraceBuilder::with_threads(1);
        for _ in 0..100 {
            b.push(Op::Acquire(T0, m)).unwrap();
            b.push(Op::Release(T0, m)).unwrap();
        }
        let trace = b.finish();
        let mut s = Sampler::with_config(SamplerConfig::default().with_rate(0.0));
        s.run(&trace);
        assert_eq!(s.stats().vc_ops, 0);
        assert_eq!(s.stats().vc_allocated, 1, "one logical L_m allocation");
        assert_eq!(s.stats().sync_fastpath_hits, 99, "all re-acquires hit");
        assert_eq!(s.stats().sync_slow_joins, 0);
    }

    #[test]
    fn lazy_locks_flush_before_foreign_joins() {
        // T0 releases m lazily, then T1's acquire must observe the
        // release-time clock (not T0's later growth): T0 writes x inside
        // the critical section and again after the release; T1's read of x
        // is ordered only with the first write.
        let m = LockId::new(0);
        let y = VarId::new(1);
        let mut b = TraceBuilder::with_threads(2);
        b.push(Op::Acquire(T0, m)).unwrap();
        b.write(T0, X).unwrap();
        b.push(Op::Release(T0, m)).unwrap();
        b.write(T0, y).unwrap(); // after release: NOT ordered with T1
        b.push(Op::Acquire(T1, m)).unwrap();
        b.read(T1, X).unwrap(); // ordered via m: no race
        b.read(T1, y).unwrap(); // races with T0's post-release write
        let trace = b.finish();
        let mut s = Sampler::with_config(SamplerConfig::default().with_rate(1.0));
        s.run(&trace);
        assert_eq!(s.warnings().len(), 1, "{:?}", s.warnings());
        assert_eq!(s.warnings()[0].var, y);
        assert_eq!(s.warnings()[0].kind, WarningKind::WriteRead);
    }
}
