//! A blocking `ftb-serve/1` client: used by `ftrace client`, the
//! `serve_load` bench, the serve smoke in `scripts/check.sh`, and the
//! integration tests.

use crate::frame::{read_frame, write_frame, Frame};
use ft_trace::json::{parse, JsonValue};
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A parsed `REPORT` frame plus client-side timing.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// The raw `ftrace.serve.report/1` JSON document.
    pub json: String,
    /// Events the server analyzed.
    pub events: u64,
    /// Accesses the server shed under backpressure.
    pub dropped_events: u64,
    /// Number of race warnings in the report.
    pub warnings: u64,
    /// The server's precision string (`"full"` or a degradation summary).
    pub precision: String,
    /// Wall time from sending `CLOSE` to receiving the report.
    pub report_latency: Duration,
}

/// One open connection to a daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn u64_field(doc: &JsonValue, key: &str) -> u64 {
    doc.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0) as u64
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `127.0.0.1:7199`).
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cloning socket: {e}"))?,
        );
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    fn send(&mut self, frame: &Frame) -> Result<(), String> {
        write_frame(&mut self.writer, frame).map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("send: {e}"))
    }

    fn recv(&mut self) -> Result<Frame, String> {
        match read_frame(&mut self.reader) {
            Ok(Some(Frame::Error(msg))) => Err(format!("server error: {msg}")),
            Ok(Some(f)) => Ok(f),
            Ok(None) => Err("server closed the connection".into()),
            Err(e) => Err(format!("recv: {e}")),
        }
    }

    /// Opens an upload session; returns the server's hello JSON.
    pub fn open(&mut self, tenant: &str) -> Result<String, String> {
        self.open_with_mode(tenant, None)
    }

    /// Opens an upload session in an explicit detector mode
    /// (`"sampler"` or `"fasttrack"`); `None` uses the server default
    /// (FastTrack). Returns the server's hello JSON.
    pub fn open_with_mode(&mut self, tenant: &str, mode: Option<&str>) -> Result<String, String> {
        let payload = match mode {
            Some(m) => format!("{tenant} mode={m}"),
            None => tenant.to_string(),
        };
        self.send(&Frame::Open(payload))?;
        match self.recv()? {
            Frame::Hello(json) => Ok(json),
            other => Err(format!("expected HELLO, got {other:?}")),
        }
    }

    /// Streams one chunk of `.ftb` bytes.
    pub fn send_chunk(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.send(&Frame::Data(bytes.to_vec()))
    }

    /// Ends the upload and waits for the session report.
    pub fn close_session(&mut self) -> Result<ServeReport, String> {
        let start = Instant::now();
        self.send(&Frame::Close)?;
        let json = match self.recv()? {
            Frame::Report(json) => json,
            other => return Err(format!("expected REPORT, got {other:?}")),
        };
        let report_latency = start.elapsed();
        let doc = parse(&json).map_err(|e| format!("report is not valid JSON: {e}"))?;
        let warnings = doc
            .get("warnings")
            .and_then(|v| v.as_array())
            .map_or(0, |a| a.len() as u64);
        Ok(ServeReport {
            events: u64_field(&doc, "events"),
            dropped_events: u64_field(&doc, "dropped_events"),
            warnings,
            precision: doc
                .get("precision")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
            json,
            report_latency,
        })
    }

    /// Scrapes the server-wide Prometheus exposition.
    pub fn metrics(&mut self) -> Result<String, String> {
        self.send(&Frame::Metrics)?;
        match self.recv()? {
            Frame::MetricsText(text) => Ok(text),
            other => Err(format!("expected METRICS text, got {other:?}")),
        }
    }

    /// Asks the daemon to shut down; returns once it acknowledges.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.send(&Frame::Shutdown)?;
        match self.recv()? {
            Frame::Bye => Ok(()),
            other => Err(format!("expected BYE, got {other:?}")),
        }
    }
}

/// Uploads a whole in-memory `.ftb` image as one session, chunked at
/// `chunk` bytes, and returns the report.
pub fn upload(
    addr: &str,
    tenant: &str,
    ftb_bytes: &[u8],
    chunk: usize,
) -> Result<ServeReport, String> {
    upload_with_mode(addr, tenant, ftb_bytes, chunk, None)
}

/// [`upload`], with an explicit per-session detector mode (`"sampler"` or
/// `"fasttrack"`; `None` = server default).
pub fn upload_with_mode(
    addr: &str,
    tenant: &str,
    ftb_bytes: &[u8],
    chunk: usize,
    mode: Option<&str>,
) -> Result<ServeReport, String> {
    let mut client = Client::connect(addr)?;
    client.open_with_mode(tenant, mode)?;
    for piece in ftb_bytes.chunks(chunk.max(1)) {
        client.send_chunk(piece)?;
    }
    client.close_session()
}
