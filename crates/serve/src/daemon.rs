//! The daemon: TCP listener, per-connection protocol loop, graceful
//! shutdown.
//!
//! One OS thread per connection (uploads are long byte streams, so the
//! thread-per-connection model costs one mostly-blocked thread per tenant
//! and keeps every code path synchronous and lock-light), plus one
//! analysis thread per *open session*. The connection thread decodes
//! `.ftb` bytes incrementally with [`FtbDecoder`] and pushes batches of
//! decoded [`ft_trace::Op`]s through the session's bounded [`Lane`];
//! decoding on the socket thread is what lets the `DropOldest` policy shed
//! *accesses* instead of corrupting the byte stream mid-record.
//!
//! Shutdown is a control frame (`SHUTDOWN`), not a signal: the workspace
//! is dependency-free and pure-std Rust cannot install signal handlers, so
//! the daemon's graceful path is in-band. (An external SIGTERM still works
//! via the default disposition — the process dies, the kernel reaps the
//! socket — it is just not graceful.) The accept loop parks in
//! `TcpListener::accept`; the shutdown path sets a flag and then
//! self-connects to wake it.

use crate::frame::{read_frame, write_frame, Frame};
use crate::lane::Lane;
use crate::registry::Registry;
use crate::session::{SessionMode, Worker};
use ft_runtime::online::OverflowPolicy;
use ft_trace::FtbDecoder;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Daemon configuration (all fields have serviceable defaults).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port `0` to let the OS pick (tests do).
    pub addr: String,
    /// Global shadow-state budget in bytes, apportioned across live
    /// sessions. `0` = unbudgeted (no guards).
    pub mem_budget: usize,
    /// Per-session lane capacity in *events* (decoded ops, not bytes).
    pub lane_cap: usize,
    /// What to do when a session's lane fills faster than its worker
    /// drains: block the socket (TCP backpressure) or shed old accesses.
    pub overflow: OverflowPolicy,
    /// Report every race on a variable instead of only the first.
    pub report_all: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7199".into(),
            mem_budget: 0,
            lane_cap: 1 << 16,
            overflow: OverflowPolicy::Block,
            report_all: false,
        }
    }
}

/// A running daemon; joinable via [`Daemon::join`].
pub struct Daemon {
    addr: SocketAddr,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Binds the listener and starts the accept loop.
    pub fn start(config: ServeConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(Registry::new(config.mem_budget));
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let registry = Arc::clone(&registry);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("ft-serve-accept".into())
                .spawn(move || accept_loop(listener, config, registry, shutdown))
                .expect("spawn accept loop")
        };
        Ok(Daemon {
            addr,
            registry,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port `0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared registry (metrics and live-session introspection).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Blocks until the accept loop exits (a `SHUTDOWN` frame arrived).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Requests shutdown from within the process (tests; the CLI's ^C
    /// path just lets the process die).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // wake the accept loop
    }
}

fn accept_loop(
    listener: TcpListener,
    config: ServeConfig,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let config = config.clone();
        let registry = Arc::clone(&registry);
        let shutdown = Arc::clone(&shutdown);
        let addr = listener.local_addr().ok();
        // Connection threads are deliberately not joined at shutdown: a
        // handler parked in `read_frame` only wakes when its client sends
        // or disconnects, so joining here would hold shutdown hostage to
        // the slowest idle client. `Daemon::join` returning means "no new
        // sessions"; in-flight handlers finish on their own clock (the CLI
        // process exits right after, which is the non-graceful remainder).
        std::thread::Builder::new()
            .name("ft-serve-conn".into())
            .spawn(move || {
                let _ = handle_conn(stream, &config, &registry, &shutdown, addr);
            })
            .expect("spawn connection handler");
    }
}

/// Serves one connection until EOF, protocol error, or shutdown.
fn handle_conn(
    stream: TcpStream,
    config: &ServeConfig,
    registry: &Registry,
    shutdown: &AtomicBool,
    self_addr: Option<SocketAddr>,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    // At most one open session per connection.
    let mut session: Option<(Worker, FtbDecoder)> = None;

    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => break, // clean EOF
            Err(e) => {
                send(&mut writer, &Frame::Error(format!("protocol: {e}")))?;
                break;
            }
        };
        match frame {
            Frame::Open(payload) => {
                if session.is_some() {
                    send(&mut writer, &Frame::Error("session already open".into()))?;
                    break;
                }
                // OPEN payload: `tenant [mode=sampler|fasttrack]` — the
                // tenant id optionally followed by per-session options.
                let (tenant, mode) = match parse_open(&payload) {
                    Ok(pair) => pair,
                    Err(e) => {
                        send(&mut writer, &Frame::Error(e))?;
                        break;
                    }
                };
                let ticket = registry.open(tenant);
                let lane = Arc::new(Lane::new(config.lane_cap, config.overflow));
                let hello = hello_json(&ticket.tenant, ticket.id, mode, registry);
                session = Some((
                    Worker::spawn(ticket, lane, config.report_all, mode),
                    FtbDecoder::new(),
                ));
                send(&mut writer, &Frame::Hello(hello))?;
            }
            Frame::Data(bytes) => {
                if session.is_none() {
                    send(&mut writer, &Frame::Error("DATA before OPEN".into()))?;
                    break;
                }
                registry.add_bytes(bytes.len() as u64);
                let decode_err = {
                    let (worker, decoder) = session.as_mut().expect("checked above");
                    decoder.push(&bytes);
                    let mut batch = Vec::new();
                    let mut err = None;
                    loop {
                        match decoder.next_op() {
                            Ok(Some(op)) => batch.push(op),
                            Ok(None) => break,
                            Err(e) => {
                                err = Some(e);
                                break;
                            }
                        }
                    }
                    // Ship what decoded cleanly even on error: the worker
                    // exits via lane close either way.
                    worker.lane().push(batch);
                    err
                };
                if let Some(e) = decode_err {
                    send(&mut writer, &Frame::Error(format!("ftb decode: {e}")))?;
                    let (worker, _) = session.take().expect("checked above");
                    let id = worker.ticket().id;
                    worker.abandon();
                    registry.abort(id);
                    break;
                }
            }
            Frame::Close => {
                let Some((worker, decoder)) = session.take() else {
                    send(&mut writer, &Frame::Error("CLOSE before OPEN".into()))?;
                    break;
                };
                if let Err(e) = decoder.finish() {
                    let id = worker.ticket().id;
                    worker.abandon();
                    registry.abort(id);
                    send(&mut writer, &Frame::Error(format!("ftb incomplete: {e}")))?;
                    break;
                }
                let id = worker.ticket().id;
                let outcome = worker.finish();
                let report = outcome.report_json.clone();
                registry.close(id, &outcome);
                send(&mut writer, &Frame::Report(report))?;
            }
            Frame::Metrics => {
                send(&mut writer, &Frame::MetricsText(registry.prometheus()))?;
            }
            Frame::Shutdown => {
                send(&mut writer, &Frame::Bye)?;
                shutdown.store(true, Ordering::SeqCst);
                if let Some(addr) = self_addr {
                    let _ = TcpStream::connect(addr); // wake the accept loop
                }
                break;
            }
            Frame::Hello(_)
            | Frame::Report(_)
            | Frame::MetricsText(_)
            | Frame::Bye
            | Frame::Error(_) => {
                send(&mut writer, &Frame::Error("server-only frame type".into()))?;
                break;
            }
        }
    }

    // The client vanished (or errored) with a session still open: tear it
    // down and return its budget share.
    if let Some((worker, _)) = session.take() {
        let id = worker.ticket().id;
        worker.abandon();
        registry.abort(id);
    }
    Ok(())
}

fn send<W: Write>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    write_frame(w, frame)?;
    w.flush()
}

/// Splits the OPEN payload into the tenant id and per-session options.
/// Today the only option is `mode=`; unknown options are a protocol error
/// so typos fail loudly instead of silently running the wrong tier.
fn parse_open(payload: &str) -> Result<(&str, SessionMode), String> {
    let mut parts = payload.split_whitespace();
    let tenant = parts.next().unwrap_or("");
    if tenant.is_empty() {
        return Err("OPEN payload is missing a tenant id".into());
    }
    let mut mode = SessionMode::default();
    for token in parts {
        match token.split_once('=') {
            Some(("mode", value)) => mode = SessionMode::parse(value)?,
            _ => return Err(format!("unknown OPEN option {token:?}")),
        }
    }
    Ok((tenant, mode))
}

fn hello_json(tenant: &str, id: u64, mode: SessionMode, registry: &Registry) -> String {
    let mut w = ft_obs::JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "ftrace.serve.hello/1");
    w.field_u64("session", id);
    w.field_str("tenant", tenant);
    w.field_str("mode", mode.tool_label());
    w.field_u64("budget_share_bytes", registry.current_share() as u64);
    w.field_u64("sessions_live", registry.live_sessions() as u64);
    w.end_object();
    w.finish()
}
