//! The `ftb-serve/1` wire protocol: length-prefixed frames over a byte
//! stream.
//!
//! The daemon speaks a deliberately tiny binary framing instead of HTTP —
//! the workspace is dependency-free, and a race-detection upload is a long
//! one-way byte stream punctuated by a handful of control messages, which
//! length-prefixed frames express exactly:
//!
//! ```text
//! frame := len:u32 LE   (length of everything after this field)
//!          type:u8
//!          payload:[u8; len-1]
//! ```
//!
//! Client-to-server types: [`Frame::Open`] (payload: UTF-8 tenant id,
//! optionally followed by ` mode=sampler|fasttrack` to pick the session's
//! detector tier),
//! [`Frame::Data`] (payload: raw `.ftb` bytes, chunked arbitrarily),
//! [`Frame::Close`], [`Frame::Metrics`], [`Frame::Shutdown`].
//! Server-to-client: [`Frame::Hello`], [`Frame::Report`] (JSON),
//! [`Frame::MetricsText`] (Prometheus exposition), [`Frame::Bye`],
//! [`Frame::Error`].
//!
//! Every frame is bounded by [`MAX_FRAME`]: a peer announcing a longer
//! frame is a protocol error, so a malicious or corrupt length prefix can
//! never balloon the receiver's memory.

use std::io::{self, Read, Write};

/// Hard ceiling on a single frame's announced length (type byte +
/// payload). Uploads larger than this simply span multiple `DATA` frames.
pub const MAX_FRAME: usize = 16 << 20;

/// Opens a session: the payload names the tenant.
const T_OPEN: u8 = 0x01;
/// Carries a chunk of the session's `.ftb` byte stream.
const T_DATA: u8 = 0x02;
/// Ends the upload and requests the session report.
const T_CLOSE: u8 = 0x03;
/// Requests the server-wide Prometheus exposition (no session needed).
const T_METRICS: u8 = 0x04;
/// Asks the daemon to shut down gracefully.
const T_SHUTDOWN: u8 = 0x05;
/// Session accepted; payload is a small JSON object.
const T_HELLO: u8 = 0x81;
/// The per-session diagnostics report (JSON).
const T_REPORT: u8 = 0x82;
/// The Prometheus text exposition.
const T_METRICS_TEXT: u8 = 0x83;
/// Shutdown acknowledged.
const T_BYE: u8 = 0x84;
/// Protocol or analysis error; payload is a UTF-8 message.
const T_ERROR: u8 = 0xFF;

/// One protocol message in either direction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: open a session for the named tenant. The payload is
    /// the tenant id, optionally followed by whitespace-separated options
    /// (`mode=sampler|fasttrack`).
    Open(String),
    /// Client → server: a chunk of the session's `.ftb` stream.
    Data(Vec<u8>),
    /// Client → server: end of upload, report requested.
    Close,
    /// Client → server: scrape the server-wide metrics.
    Metrics,
    /// Client → server: stop the daemon.
    Shutdown,
    /// Server → client: session opened (JSON payload with the session id
    /// and the tenant's current budget share).
    Hello(String),
    /// Server → client: the session report (JSON,
    /// schema `ftrace.serve.report/1`).
    Report(String),
    /// Server → client: Prometheus text exposition.
    MetricsText(String),
    /// Server → client: shutdown acknowledged.
    Bye,
    /// Server → client: something went wrong; the connection (and any open
    /// session) is torn down after this frame.
    Error(String),
}

fn protocol_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn utf8(payload: Vec<u8>, what: &str) -> io::Result<String> {
    String::from_utf8(payload).map_err(|_| protocol_err(format!("{what} payload is not UTF-8")))
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Open(_) => T_OPEN,
            Frame::Data(_) => T_DATA,
            Frame::Close => T_CLOSE,
            Frame::Metrics => T_METRICS,
            Frame::Shutdown => T_SHUTDOWN,
            Frame::Hello(_) => T_HELLO,
            Frame::Report(_) => T_REPORT,
            Frame::MetricsText(_) => T_METRICS_TEXT,
            Frame::Bye => T_BYE,
            Frame::Error(_) => T_ERROR,
        }
    }

    fn payload(&self) -> &[u8] {
        match self {
            Frame::Open(s)
            | Frame::Hello(s)
            | Frame::Report(s)
            | Frame::MetricsText(s)
            | Frame::Error(s) => s.as_bytes(),
            Frame::Data(b) => b,
            Frame::Close | Frame::Metrics | Frame::Shutdown | Frame::Bye => &[],
        }
    }
}

/// Writes one frame. The caller flushes (frames are often followed by a
/// blocking read for the reply, so buffering across frames is deliberate).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let payload = frame.payload();
    let len = payload.len() + 1;
    if len > MAX_FRAME {
        return Err(protocol_err(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&[frame.type_byte()])?;
    w.write_all(payload)
}

/// Reads one frame; `Ok(None)` at a clean end of stream (the peer closed
/// between frames). EOF mid-frame is an error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
    let mut len_bytes = [0u8; 4];
    match read_full(r, &mut len_bytes)? {
        0 => return Ok(None),
        4 => {}
        _ => return Err(protocol_err("connection closed mid-frame")),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 {
        return Err(protocol_err("zero-length frame (missing type byte)"));
    }
    if len > MAX_FRAME {
        return Err(protocol_err(format!(
            "peer announced a {len}-byte frame (limit {MAX_FRAME})"
        )));
    }
    let mut body = vec![0u8; len];
    if read_full(r, &mut body)? != len {
        return Err(protocol_err("connection closed mid-frame"));
    }
    let ty = body[0];
    let payload = body.split_off(1);
    Ok(Some(match ty {
        T_OPEN => Frame::Open(utf8(payload, "OPEN")?),
        T_DATA => Frame::Data(payload),
        T_CLOSE => Frame::Close,
        T_METRICS => Frame::Metrics,
        T_SHUTDOWN => Frame::Shutdown,
        T_HELLO => Frame::Hello(utf8(payload, "HELLO")?),
        T_REPORT => Frame::Report(utf8(payload, "REPORT")?),
        T_METRICS_TEXT => Frame::MetricsText(utf8(payload, "METRICS")?),
        T_BYE => Frame::Bye,
        T_ERROR => Frame::Error(utf8(payload, "ERROR")?),
        other => return Err(protocol_err(format!("unknown frame type {other:#04x}"))),
    }))
}

/// Reads until `buf` is full or EOF; returns the bytes read (EOF at a
/// frame boundary reads zero bytes, which [`read_frame`] maps to `None`).
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips() {
        let frames = [
            Frame::Open("tenant-a".into()),
            Frame::Data(vec![1, 2, 3, 0xFF]),
            Frame::Close,
            Frame::Metrics,
            Frame::Shutdown,
            Frame::Hello("{\"session\":1}".into()),
            Frame::Report("{}".into()),
            Frame::MetricsText("# HELP x\n".into()),
            Frame::Bye,
            Frame::Error("boom".into()),
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            write_frame(&mut bytes, f).unwrap();
        }
        let mut r = bytes.as_slice();
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &Frame::Data(vec![0u8; 100])).unwrap();
        for cut in [1, 3, 4, 50] {
            let mut r = &bytes[..cut];
            assert!(read_frame(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn oversized_and_malformed_frames_are_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_frame(&mut bytes.as_slice()).is_err());

        let mut zero = Vec::new();
        zero.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_frame(&mut zero.as_slice()).is_err());

        let mut unknown = Vec::new();
        unknown.extend_from_slice(&1u32.to_le_bytes());
        unknown.push(0x42);
        assert!(read_frame(&mut unknown.as_slice()).is_err());
    }
}
