//! The per-session bounded lane between the socket thread and the
//! analysis worker.
//!
//! This is the serve-plane incarnation of the online monitor's bounded
//! per-thread lanes (`ft_runtime::online`), and it reuses the same
//! [`OverflowPolicy`] vocabulary with the same soundness contract:
//!
//! - [`OverflowPolicy::Block`] parks the socket thread until the worker
//!   drains — the daemon stops reading the connection, the kernel's TCP
//!   window fills, and the *client* stalls. Backpressure reaches the tenant
//!   that caused it and nobody loses events.
//! - [`OverflowPolicy::DropOldest`] sheds **data accesses only** from the
//!   oldest queued batches. Synchronization events are never dropped —
//!   losing a happens-before edge would corrupt every verdict after it,
//!   while losing an access can only miss the warnings that access would
//!   have produced. Shed counts surface in the session report as
//!   `dropped_events`, so degraded sessions are loud, exactly like the
//!   monitor's `online.dropped_events`.
//!
//! The lane is bounded in *events*, not batches, so a tenant streaming
//! huge `DATA` frames and one streaming tiny frames hit the same ceiling.

use ft_runtime::online::OverflowPolicy;
use ft_trace::Op;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A bounded multi-producer (in practice single-producer) batch queue.
#[derive(Debug)]
pub struct Lane {
    state: Mutex<LaneState>,
    not_full: Condvar,
    not_empty: Condvar,
    cap_events: usize,
    policy: OverflowPolicy,
}

#[derive(Debug, Default)]
struct LaneState {
    queue: VecDeque<Vec<Op>>,
    pending: usize,
    dropped: u64,
    closed: bool,
}

fn is_access(op: &Op) -> bool {
    matches!(op, Op::Read(..) | Op::Write(..))
}

impl Lane {
    /// A lane admitting up to `cap_events` queued events before the
    /// overflow policy engages.
    pub fn new(cap_events: usize, policy: OverflowPolicy) -> Self {
        Lane {
            state: Mutex::new(LaneState::default()),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap_events: cap_events.max(1),
            policy,
        }
    }

    /// Enqueues one decoded batch, applying the overflow policy if the lane
    /// is full. A batch larger than the whole lane is admitted over-cap
    /// once the lane is otherwise empty (the monitor's over-cap escape:
    /// progress beats a livelock on a single oversized burst).
    pub fn push(&self, batch: Vec<Op>) {
        if batch.is_empty() {
            return;
        }
        let mut state = self.state.lock().expect("lane poisoned");
        loop {
            if state.closed {
                return; // session torn down; the worker will never pop
            }
            if state.pending + batch.len() <= self.cap_events || state.queue.is_empty() {
                state.pending += batch.len();
                state.queue.push_back(batch);
                drop(state);
                self.not_empty.notify_one();
                return;
            }
            match self.policy {
                OverflowPolicy::Block => {
                    state = self.not_full.wait(state).expect("lane poisoned");
                }
                OverflowPolicy::DropOldest => {
                    // Shed accesses from the oldest batches until the new
                    // batch fits; keep every sync op. If nothing sheddable
                    // remains the lane is all happens-before structure, and
                    // the batch goes in over-cap rather than being lost.
                    let need = state.pending + batch.len() - self.cap_events;
                    let mut shed = 0usize;
                    for queued in state.queue.iter_mut() {
                        if shed >= need {
                            break;
                        }
                        let before = queued.len();
                        queued.retain(|op| !is_access(op));
                        shed += before - queued.len();
                    }
                    state.pending -= shed;
                    state.dropped += shed as u64;
                    state.pending += batch.len();
                    state.queue.push_back(batch);
                    drop(state);
                    self.not_empty.notify_one();
                    return;
                }
            }
        }
    }

    /// Dequeues the oldest batch; `None` once the lane is closed and
    /// drained.
    pub fn pop(&self) -> Option<Vec<Op>> {
        let mut state = self.state.lock().expect("lane poisoned");
        loop {
            if let Some(batch) = state.queue.pop_front() {
                state.pending -= batch.len();
                drop(state);
                self.not_full.notify_one();
                return Some(batch);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("lane poisoned");
        }
    }

    /// Marks the upload finished: queued batches still drain, then
    /// [`Lane::pop`] returns `None`.
    pub fn close(&self) {
        self.state.lock().expect("lane poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Accesses shed by [`OverflowPolicy::DropOldest`] so far.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("lane poisoned").dropped
    }

    /// Events currently queued (for the `serve.lane_depth` gauge).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("lane poisoned").pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_clock::Tid;
    use ft_trace::VarId;
    use std::sync::Arc;

    fn reads(n: usize) -> Vec<Op> {
        (0..n)
            .map(|_| Op::Read(Tid::new(0), VarId::new(0)))
            .collect()
    }

    #[test]
    fn fifo_and_close_drain() {
        let lane = Lane::new(100, OverflowPolicy::Block);
        lane.push(reads(3));
        lane.push(vec![Op::Acquire(Tid::new(0), ft_trace::LockId::new(0))]);
        lane.close();
        assert_eq!(lane.pop().unwrap().len(), 3);
        assert_eq!(lane.pop().unwrap().len(), 1);
        assert!(lane.pop().is_none());
    }

    #[test]
    fn block_policy_applies_backpressure() {
        let lane = Arc::new(Lane::new(4, OverflowPolicy::Block));
        lane.push(reads(4));
        let producer = {
            let lane = Arc::clone(&lane);
            std::thread::spawn(move || {
                lane.push(reads(4)); // must wait for the consumer
                lane.close();
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(lane.depth(), 4, "producer must be parked, not enqueued");
        assert_eq!(lane.pop().unwrap().len(), 4);
        assert_eq!(lane.pop().unwrap().len(), 4);
        assert!(lane.pop().is_none());
        producer.join().unwrap();
        assert_eq!(lane.dropped(), 0);
    }

    #[test]
    fn drop_oldest_sheds_accesses_never_sync() {
        let lane = Lane::new(4, OverflowPolicy::DropOldest);
        let t = Tid::new(0);
        let m = ft_trace::LockId::new(0);
        lane.push(vec![
            Op::Acquire(t, m),
            Op::Read(t, VarId::new(0)),
            Op::Read(t, VarId::new(1)),
            Op::Release(t, m),
        ]);
        lane.push(reads(2)); // over cap: sheds the two old reads
        lane.close();
        assert_eq!(lane.dropped(), 2);
        let first = lane.pop().unwrap();
        assert_eq!(first, vec![Op::Acquire(t, m), Op::Release(t, m)]);
        assert_eq!(lane.pop().unwrap().len(), 2);
        assert!(lane.pop().is_none());
    }

    #[test]
    fn oversized_batch_uses_the_over_cap_escape() {
        for policy in [OverflowPolicy::Block, OverflowPolicy::DropOldest] {
            let lane = Lane::new(2, policy);
            lane.push(reads(10)); // empty lane: admitted whole
            lane.close();
            assert_eq!(lane.pop().unwrap().len(), 10);
        }
    }
}
