//! `ftrace serve`: a multi-tenant race-detection daemon.
//!
//! The serve plane turns the offline `ftrace analyze` pipeline into a
//! long-lived service: many clients connect over TCP, each uploads a
//! `.ftb` trace as a *session*, and the daemon analyzes every session with
//! a fully isolated [`fasttrack::FastTrack`] instance — separate shadow
//! state, separate warnings, separate precision verdict. There is no HTTP
//! stack and no external dependency anywhere: the wire format is the
//! length-prefixed [`frame`] protocol over `std::net`, and everything else
//! is `std::sync` + the existing workspace crates.
//!
//! The pieces, one module each:
//!
//! * [`frame`] — the `ftb-serve/1` wire protocol (length-prefixed frames,
//!   16 MiB ceiling, typed control/data messages both directions).
//! * [`registry`] — tenant sessions and the **global memory budget**: one
//!   byte budget for the whole daemon, apportioned evenly across live
//!   sessions and re-apportioned on every open/close; each session's
//!   ft-guard re-targets to its current share at batch granularity.
//! * [`lane`] — the bounded queue between socket and analysis threads,
//!   with the online monitor's [`ft_runtime::online::OverflowPolicy`]
//!   semantics (block = TCP backpressure; drop-oldest sheds accesses only,
//!   never synchronization).
//! * [`session`] — the per-session analysis worker and the
//!   `ftrace.serve.report/1` report document.
//! * [`daemon`] — the listener, the per-connection protocol loop, and
//!   in-band graceful shutdown (`SHUTDOWN` frame).
//! * [`client`] — the blocking client used by `ftrace client`, the
//!   `serve_load` bench, and CI's serve smoke.
//!
//! # Wire format at a glance
//!
//! Every message on the socket is one length-prefixed frame; `.ftb` bytes
//! flow as a sequence of `DATA` frames in whatever chunking the client
//! picks (the daemon reassembles records across frame boundaries):
//!
//! ```text
//!   ┌──────────────┬──────────┬───────────────────────────────┐
//!   │ len: u32 LE  │ type: u8 │ payload (len - 1 bytes)       │
//!   └──────────────┴──────────┴───────────────────────────────┘
//!
//!   client ──► OPEN  "tenant-id[\n mode]"     ◄── HELLO  session + share
//!   client ──► DATA  .ftb bytes (chunked)
//!   client ──► DATA  ...
//!   client ──► CLOSE                           ◄── REPORT ftrace.serve.report/1
//!   client ──► METRICS                         ◄── METRICS_TEXT Prometheus
//!   client ──► SHUTDOWN                        ◄── BYE     (daemon exits)
//!                                              ◄── ERROR   (any time, aborts)
//! ```
//!
//! The `OPEN` payload is the UTF-8 tenant id, optionally followed by a
//! newline and a session mode (`fasttrack`, the default, or `sampler` for
//! the low-overhead [`ft_sampler`]-backed tier). Frames above
//! [`MAX_FRAME`] (16 MiB) are rejected with an `ERROR` frame.
//!
//! # Client example
//!
//! Upload one `.ftb` trace as a session and read the report back
//! (requires a daemon listening on the address):
//!
//! ```no_run
//! use ft_serve::client;
//!
//! let ftb_bytes = std::fs::read("trace.ftb").expect("trace file");
//! let report = client::upload("127.0.0.1:7199", "team-a", &ftb_bytes, 4096)
//!     .expect("upload session");
//! println!(
//!     "{} events, {} warning(s), precision {}",
//!     report.events, report.warnings, report.precision,
//! );
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod daemon;
pub mod frame;
pub mod lane;
pub mod registry;
pub mod session;

pub use client::{upload, upload_with_mode, Client, ServeReport};
pub use daemon::{Daemon, ServeConfig};
pub use frame::{read_frame, write_frame, Frame, MAX_FRAME};
pub use lane::Lane;
pub use registry::{Registry, SessionTicket};
pub use session::{SessionMode, SessionOutcome, Worker};
