//! The session registry: tenant bookkeeping and the global memory budget.
//!
//! The daemon owns one byte budget for *all* shadow state it will ever
//! hold, and the registry apportions it evenly across live sessions: with
//! budget `B` and `n` open sessions every session's guard is re-targeted
//! to `B / n`. Apportionment happens on every open and close, and each
//! session's share lives in an [`AtomicUsize`] the analysis worker re-reads
//! between batches — so a long-running session *shrinks* when neighbours
//! arrive and *grows* back as they leave, with the ft-guard degradation
//! ladder absorbing any overshoot exactly as it does offline.
//!
//! The registry also owns the server-wide [`MetricsRegistry`] behind the
//! `METRICS` scrape frame.

use ft_obs::{to_prometheus, MetricsRegistry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::session::SessionOutcome;

/// Handed to a session worker at open; holds the live budget share.
#[derive(Clone, Debug)]
pub struct SessionTicket {
    /// Server-unique session id (monotonic across the daemon's life).
    pub id: u64,
    /// The tenant that opened the session.
    pub tenant: String,
    /// This session's current slice of the global budget, in bytes.
    /// Re-written by the registry whenever a session opens or closes;
    /// `0` means the server runs unbudgeted (no guard at all).
    pub share: Arc<AtomicUsize>,
}

#[derive(Debug)]
struct Inner {
    next_session: u64,
    live: HashMap<u64, Arc<AtomicUsize>>,
    metrics: MetricsRegistry,
}

/// Shared daemon state: live sessions, budget apportionment, metrics.
#[derive(Debug)]
pub struct Registry {
    global_budget: usize,
    inner: Mutex<Inner>,
}

impl Registry {
    /// A registry apportioning `global_budget` bytes of shadow state
    /// (`0` = unbudgeted: sessions run without a guard).
    pub fn new(global_budget: usize) -> Self {
        let mut metrics = MetricsRegistry::new();
        metrics.set_meta("tool", "ftrace-serve");
        metrics.set_gauge("budget_bytes", global_budget as f64);
        metrics.set_gauge("sessions_live", 0.0);
        Registry {
            global_budget,
            inner: Mutex::new(Inner {
                next_session: 1,
                live: HashMap::new(),
                metrics,
            }),
        }
    }

    /// The server-wide budget in bytes (`0` = unbudgeted).
    pub fn global_budget(&self) -> usize {
        self.global_budget
    }

    /// Opens a session for `tenant` and re-apportions the budget across
    /// all live sessions (including the new one).
    pub fn open(&self, tenant: &str) -> SessionTicket {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let id = inner.next_session;
        inner.next_session += 1;
        let share = Arc::new(AtomicUsize::new(0));
        inner.live.insert(id, Arc::clone(&share));
        self.apportion(&mut inner);
        let live = inner.live.len() as f64;
        inner.metrics.inc_counter("sessions_opened", 1);
        inner.metrics.set_gauge("sessions_live", live);
        SessionTicket {
            id,
            tenant: tenant.to_string(),
            share,
        }
    }

    /// Closes a session: folds its outcome into the server metrics and
    /// returns its budget share to the pool (every surviving session's
    /// share grows on the spot).
    pub fn close(&self, id: u64, outcome: &SessionOutcome) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.live.remove(&id);
        self.apportion(&mut inner);
        let live = inner.live.len() as f64;
        let m = &mut inner.metrics;
        m.inc_counter("sessions_closed", 1);
        m.inc_counter("events_total", outcome.events);
        m.inc_counter("warnings_total", outcome.warnings.len() as u64);
        m.inc_counter("dropped_events", outcome.dropped_events);
        if outcome.precision.is_degraded() {
            m.inc_counter("sessions_degraded", 1);
        }
        m.record("report_ns", outcome.report_ns);
        m.record("session_events", outcome.events);
        m.record(
            "session_peak_shadow_bytes",
            outcome.peak_shadow_bytes as u64,
        );
        m.set_gauge("sessions_live", live);
    }

    /// Removes a session that died without producing a report (client
    /// vanished mid-upload, decode error, worker panic).
    pub fn abort(&self, id: u64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if inner.live.remove(&id).is_some() {
            self.apportion(&mut inner);
            let live = inner.live.len() as f64;
            inner.metrics.inc_counter("sessions_aborted", 1);
            inner.metrics.set_gauge("sessions_live", live);
        }
    }

    /// Counts bytes received on the wire (`DATA` payloads).
    pub fn add_bytes(&self, n: u64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.metrics.inc_counter("bytes_total", n);
    }

    /// Live sessions right now.
    pub fn live_sessions(&self) -> usize {
        self.inner.lock().expect("registry poisoned").live.len()
    }

    /// The current per-session share (what a session opened *now* would
    /// receive). `0` when unbudgeted.
    pub fn current_share(&self) -> usize {
        let inner = self.inner.lock().expect("registry poisoned");
        if self.global_budget == 0 || inner.live.is_empty() {
            self.global_budget
        } else {
            self.global_budget / inner.live.len()
        }
    }

    /// The Prometheus exposition for the `METRICS` frame.
    pub fn prometheus(&self) -> String {
        let inner = self.inner.lock().expect("registry poisoned");
        to_prometheus(&inner.metrics.snapshot(), "ftrace_serve")
    }

    /// The raw snapshot (for report frames and tests).
    pub fn snapshot(&self) -> ft_obs::Snapshot {
        self.inner
            .lock()
            .expect("registry poisoned")
            .metrics
            .snapshot()
    }

    fn apportion(&self, inner: &mut Inner) {
        if self.global_budget == 0 {
            return; // unbudgeted: every share stays 0 (= no guard)
        }
        let n = inner.live.len().max(1);
        let share = self.global_budget / n;
        for s in inner.live.values() {
            s.store(share, Ordering::Relaxed);
        }
        inner.metrics.set_gauge("budget_share_bytes", share as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasttrack::Precision;

    fn outcome() -> SessionOutcome {
        SessionOutcome {
            warnings: Vec::new(),
            events: 10,
            dropped_events: 0,
            peak_shadow_bytes: 1024,
            precision: Precision::Full,
            report_ns: 5_000,
            report_json: String::new(),
        }
    }

    #[test]
    fn shares_shrink_on_open_and_grow_back_on_close() {
        let reg = Registry::new(1 << 20);
        let a = reg.open("a");
        assert_eq!(a.share.load(Ordering::Relaxed), 1 << 20);
        let b = reg.open("b");
        assert_eq!(a.share.load(Ordering::Relaxed), 1 << 19);
        assert_eq!(b.share.load(Ordering::Relaxed), 1 << 19);
        let c = reg.open("c");
        assert_eq!(a.share.load(Ordering::Relaxed), (1 << 20) / 3);
        reg.close(b.id, &outcome());
        reg.close(c.id, &outcome());
        assert_eq!(a.share.load(Ordering::Relaxed), 1 << 20);
    }

    #[test]
    fn unbudgeted_registry_hands_out_zero_shares() {
        let reg = Registry::new(0);
        let t = reg.open("a");
        assert_eq!(t.share.load(Ordering::Relaxed), 0);
        assert_eq!(reg.current_share(), 0);
    }

    #[test]
    fn metrics_accumulate_across_sessions() {
        let reg = Registry::new(0);
        let a = reg.open("a");
        let b = reg.open("b");
        assert_eq!(reg.live_sessions(), 2);
        reg.close(a.id, &outcome());
        reg.abort(b.id);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sessions_opened"), Some(2));
        assert_eq!(snap.counter("sessions_closed"), Some(1));
        assert_eq!(snap.counter("sessions_aborted"), Some(1));
        assert_eq!(snap.counter("events_total"), Some(10));
        assert_eq!(reg.live_sessions(), 0);
        let prom = reg.prometheus();
        assert!(prom.contains("# TYPE ftrace_serve_sessions_opened counter"));
    }
}
