//! The per-session analysis worker: one detector instance per upload
//! (FastTrack by default, the `ft-sampler` tier on request), fully isolated
//! shadow state, budget share re-read between batches.
//!
//! Isolation is structural, not locked-around: every session owns its own
//! [`FastTrack`] (threads, variables, locks, warnings), so two tenants'
//! traces can never observe each other's happens-before state — the
//! integration tests pin this down by demanding bit-identical warning JSON
//! between interleaved service sessions and sequential local runs.
//!
//! The worker consumes decoded batches from the session's [`Lane`], and
//! before each batch re-reads its [`SessionTicket::share`] — the registry
//! rewrites that atomic on every session open/close, so a neighbour
//! arriving mid-upload shrinks this session's guard budget on the next
//! batch boundary and departing neighbours return it.

use crate::lane::Lane;
use crate::registry::SessionTicket;
use fasttrack::{Detector, FastTrack, FastTrackConfig, GuardConfig, Precision, RuleCount, Warning};
use ft_obs::JsonWriter;
use ft_sampler::{Sampler, SamplerConfig};
use ft_trace::EventBlock;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Which detector a session runs, chosen per-session by the client in the
/// OPEN frame (`tenant mode=sampler`). The default is full FastTrack; the
/// sampler is the cheap always-on tier whose warnings escalate to a
/// FastTrack re-run (see `docs/DETECTORS.md`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum SessionMode {
    /// Full-precision FastTrack (the pre-PR-9 behaviour).
    #[default]
    FastTrack,
    /// The O(1)-samples tier: bounded shadow state per variable, sound but
    /// incomplete warnings, near-EMPTY cost.
    Sampler,
}

impl SessionMode {
    /// Parses the OPEN frame's `mode=` token.
    pub fn parse(s: &str) -> Result<SessionMode, String> {
        match s.to_ascii_lowercase().as_str() {
            "fasttrack" => Ok(SessionMode::FastTrack),
            "sampler" => Ok(SessionMode::Sampler),
            other => Err(format!(
                "unknown mode {other:?} (expected sampler or fasttrack)"
            )),
        }
    }

    /// The report's `tool` label for this mode.
    pub fn tool_label(self) -> &'static str {
        match self {
            SessionMode::FastTrack => "FASTTRACK",
            SessionMode::Sampler => "SAMPLER",
        }
    }
}

/// Everything a finished session reports back: the daemon turns this into
/// the `REPORT` frame and the registry folds it into server metrics.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// The session's race warnings (isolated: only this tenant's trace).
    pub warnings: Vec<Warning>,
    /// Events analyzed (after any lane shedding).
    pub events: u64,
    /// Data accesses shed by the lane's `DropOldest` policy.
    pub dropped_events: u64,
    /// High-water shadow-state footprint in bytes. Guard-accounted when
    /// budgeted; the final walked footprint otherwise.
    pub peak_shadow_bytes: usize,
    /// The ft-guard precision verdict for this session.
    pub precision: Precision,
    /// Wall time from `CLOSE` to a rendered report.
    pub report_ns: u64,
    /// The rendered `ftrace.serve.report/1` JSON document.
    pub report_json: String,
}

/// The mode-selected detector a session worker drives.
enum SessionTool {
    FastTrack(FastTrack),
    Sampler(Sampler),
}

impl SessionTool {
    fn as_detector(&self) -> &dyn Detector {
        match self {
            SessionTool::FastTrack(t) => t,
            SessionTool::Sampler(t) => t,
        }
    }

    /// Re-targets the guard budget. The sampler has no guard — its shadow
    /// state is bounded by construction (budget × 8 bytes per variable), so
    /// a changing share is a no-op there.
    fn set_mem_budget(&mut self, bytes: usize) {
        if let SessionTool::FastTrack(t) = self {
            t.set_mem_budget(bytes);
        }
    }

    /// High-water shadow footprint: guard-accounted when budgeted, walked
    /// otherwise.
    fn peak_shadow_bytes(&self) -> usize {
        match self {
            SessionTool::FastTrack(t) => t
                .shadow_budget()
                .map_or_else(|| t.shadow_bytes(), |b| b.peak()),
            SessionTool::Sampler(t) => t.shadow_bytes(),
        }
    }
}

/// The analysis state a worker thread hands back when its lane drains.
struct Analysis {
    tool: SessionTool,
    events: u64,
}

/// A running session worker; join it with [`Worker::finish`].
pub struct Worker {
    ticket: SessionTicket,
    lane: Arc<Lane>,
    mode: SessionMode,
    handle: JoinHandle<Analysis>,
}

impl Worker {
    /// Spawns the analysis thread for one session. The guard is installed
    /// only when the ticket carries a non-zero share (a zero share means
    /// the daemon runs unbudgeted).
    pub fn spawn(
        ticket: SessionTicket,
        lane: Arc<Lane>,
        report_all: bool,
        mode: SessionMode,
    ) -> Worker {
        let share = Arc::clone(&ticket.share);
        let worker_lane = Arc::clone(&lane);
        let handle = std::thread::Builder::new()
            .name(format!("ft-serve-s{}", ticket.id))
            .spawn(move || {
                let initial = share.load(Ordering::Relaxed);
                let mut tool = match mode {
                    SessionMode::FastTrack => {
                        SessionTool::FastTrack(FastTrack::with_config(FastTrackConfig {
                            report_all,
                            guard: (initial > 0).then(|| GuardConfig::with_budget(initial)),
                            ..FastTrackConfig::default()
                        }))
                    }
                    SessionMode::Sampler => SessionTool::Sampler(Sampler::with_config(
                        SamplerConfig::default().with_report_all(report_all),
                    )),
                };
                let mut block = EventBlock::with_capacity(1024);
                let mut events = 0u64;
                while let Some(batch) = worker_lane.pop() {
                    // A neighbour may have opened or closed since the last
                    // batch: re-target the guard to the current share.
                    tool.set_mem_budget(share.load(Ordering::Relaxed));
                    let len = block.refill_from_ops(&batch);
                    match &mut tool {
                        SessionTool::FastTrack(t) => t.on_block(events as usize, &block),
                        SessionTool::Sampler(t) => t.on_block(events as usize, &block),
                    }
                    events += len as u64;
                }
                Analysis { tool, events }
            })
            .expect("spawn session worker");
        Worker {
            ticket,
            lane,
            mode,
            handle,
        }
    }

    /// The detector mode this session runs under.
    pub fn mode(&self) -> SessionMode {
        self.mode
    }

    /// The session's lane (the socket thread pushes decoded batches here).
    pub fn lane(&self) -> &Arc<Lane> {
        &self.lane
    }

    /// The ticket this worker analyzes under.
    pub fn ticket(&self) -> &SessionTicket {
        &self.ticket
    }

    /// Closes the lane, joins the analysis, and renders the report.
    pub fn finish(self) -> SessionOutcome {
        let start = Instant::now();
        self.lane.close();
        let analysis = self.handle.join().expect("session worker panicked");
        let dropped = self.lane.dropped();
        let peak = analysis.tool.peak_shadow_bytes();
        let tool = analysis.tool.as_detector();
        let mut outcome = SessionOutcome {
            warnings: tool.warnings().to_vec(),
            events: analysis.events,
            dropped_events: dropped,
            peak_shadow_bytes: peak,
            precision: tool.precision(),
            report_ns: 0,
            report_json: String::new(),
        };
        outcome.report_json = render_report(
            &self.ticket,
            self.mode,
            &outcome,
            &tool.rule_breakdown(),
            &tool.metrics(),
        );
        outcome.report_ns = start.elapsed().as_nanos() as u64;
        outcome
    }

    /// Abandons the session without a report (client vanished or the
    /// upload was malformed): closes the lane and joins the worker so the
    /// shadow state is dropped before the registry re-apportions.
    pub fn abandon(self) {
        self.lane.close();
        let _ = self.handle.join();
    }
}

/// Renders the `ftrace.serve.report/1` document. Warnings use the same
/// canonical renderer as the CLI bundle ([`Warning::write_json`]), so a
/// service report and a local run of the same trace are byte-comparable.
fn render_report(
    ticket: &SessionTicket,
    mode: SessionMode,
    outcome: &SessionOutcome,
    rules: &[RuleCount],
    metrics: &ft_obs::Snapshot,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "ftrace.serve.report/1");
    w.field_u64("session", ticket.id);
    w.field_str("tenant", &ticket.tenant);
    w.field_str("tool", mode.tool_label());
    w.field_u64("events", outcome.events);
    w.field_u64("dropped_events", outcome.dropped_events);
    w.field_u64(
        "budget_share_bytes",
        ticket.share.load(Ordering::Relaxed) as u64,
    );
    w.field_u64("peak_shadow_bytes", outcome.peak_shadow_bytes as u64);
    w.field_str("precision", &outcome.precision.to_string());
    w.key("warnings");
    w.begin_array();
    for warning in &outcome.warnings {
        warning.write_json(&mut w);
    }
    w.end_array();
    w.key("rule_breakdown");
    w.begin_array();
    for r in rules {
        w.begin_object();
        w.field_str("rule", r.rule);
        w.field_u64("hits", r.hits);
        w.field_f64("percent", r.percent);
        w.end_object();
    }
    w.end_array();
    w.key("metrics");
    metrics.write_json(&mut w);
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::Lane;
    use ft_runtime::online::OverflowPolicy;
    use ft_trace::gen::{generate, GenConfig};
    use ft_trace::Trace;

    fn racy_trace(ops: usize, seed: u64) -> Trace {
        generate(
            &GenConfig {
                ops,
                ..GenConfig::default().with_races(0.08)
            },
            seed,
        )
    }

    fn ticket(share: usize) -> SessionTicket {
        SessionTicket {
            id: 7,
            tenant: "t".into(),
            share: Arc::new(std::sync::atomic::AtomicUsize::new(share)),
        }
    }

    fn run_service(trace: &Trace, chunk: usize) -> SessionOutcome {
        let lane = Arc::new(Lane::new(1 << 16, OverflowPolicy::Block));
        let worker = Worker::spawn(ticket(0), Arc::clone(&lane), false, SessionMode::FastTrack);
        for batch in trace.events().chunks(chunk) {
            lane.push(batch.to_vec());
        }
        worker.finish()
    }

    #[test]
    fn worker_matches_a_local_run_exactly() {
        let trace = racy_trace(1_500, 11);
        let mut local = FastTrack::new();
        local.run(&trace);
        for chunk in [1, 7, 64, 10_000] {
            let outcome = run_service(&trace, chunk);
            assert_eq!(outcome.events, trace.len() as u64);
            assert_eq!(outcome.dropped_events, 0);
            assert_eq!(
                fasttrack::warnings_to_json(&outcome.warnings),
                fasttrack::warnings_to_json(local.warnings()),
                "chunk {chunk}"
            );
        }
    }

    #[test]
    fn report_json_carries_the_session_identity() {
        let trace = racy_trace(300, 3);
        let outcome = run_service(&trace, 32);
        let doc = ft_trace::json::parse(&outcome.report_json).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("ftrace.serve.report/1")
        );
        assert_eq!(doc.get("session").and_then(|v| v.as_u32()), Some(7));
        assert_eq!(doc.get("tenant").and_then(|v| v.as_str()), Some("t"));
        let warnings = doc.get("warnings").and_then(|v| v.as_array()).unwrap();
        assert_eq!(warnings.len(), outcome.warnings.len());
    }

    #[test]
    fn sampler_mode_warnings_are_a_subset_of_fasttrack() {
        let trace = racy_trace(4_000, 21);
        let mut full = FastTrack::new();
        full.run(&trace);
        let mut ft_vars: Vec<u32> = full.warnings().iter().map(|w| w.var.as_u32()).collect();
        ft_vars.sort_unstable();

        let lane = Arc::new(Lane::new(1 << 16, OverflowPolicy::Block));
        let worker = Worker::spawn(ticket(0), Arc::clone(&lane), false, SessionMode::Sampler);
        lane.push(trace.events().to_vec());
        let outcome = worker.finish();
        for w in &outcome.warnings {
            assert!(
                ft_vars.binary_search(&w.var.as_u32()).is_ok(),
                "sampler fabricated a race on {}",
                w.var
            );
        }
        let doc = ft_trace::json::parse(&outcome.report_json).expect("valid JSON");
        assert_eq!(doc.get("tool").and_then(|v| v.as_str()), Some("SAMPLER"));
    }

    #[test]
    fn mode_parsing_accepts_both_tiers() {
        assert_eq!(SessionMode::parse("sampler"), Ok(SessionMode::Sampler));
        assert_eq!(SessionMode::parse("FastTrack"), Ok(SessionMode::FastTrack));
        assert!(SessionMode::parse("turbo").is_err());
    }

    #[test]
    fn budgeted_worker_reports_degradation_and_peak() {
        let trace = racy_trace(2_000, 5);
        let outcome = {
            let lane = Arc::new(Lane::new(1 << 16, OverflowPolicy::Block));
            let worker = Worker::spawn(ticket(1), Arc::clone(&lane), false, SessionMode::FastTrack);
            lane.push(trace.events().to_vec());
            worker.finish()
        };
        assert!(outcome.peak_shadow_bytes > 0);
        assert!(
            outcome.precision.is_degraded(),
            "a 1-byte budget must engage the ladder"
        );
    }
}
