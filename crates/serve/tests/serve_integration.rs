//! End-to-end properties of the serve plane, over real TCP sockets.
//!
//! The load-bearing property is **tenant isolation**: two sessions whose
//! `DATA` frames interleave arbitrarily on the wire must produce exactly
//! the warnings of two sequential, single-tenant local runs — compared as
//! the canonical warning JSON, byte for byte. Everything else (budget
//! return on close, metrics scrape, error teardown, graceful shutdown)
//! rides the same daemon fixture.

use fasttrack::{warnings_to_json, Detector, FastTrack};
use ft_runtime::online::OverflowPolicy;
use ft_serve::{upload, Client, Daemon, ServeConfig};
use ft_trace::gen::{generate, GenConfig};
use ft_trace::{FtbWriter, Trace};

fn racy_trace(ops: usize, seed: u64) -> Trace {
    generate(
        &GenConfig {
            ops,
            ..GenConfig::default().with_races(0.08)
        },
        seed,
    )
}

fn ftb_bytes(trace: &Trace) -> Vec<u8> {
    let mut w = FtbWriter::new(
        Vec::new(),
        trace.n_threads(),
        trace.n_vars(),
        trace.n_locks(),
    )
    .expect("header");
    for op in trace.events() {
        w.write_op(op).expect("record");
    }
    w.finish().expect("flush")
}

fn local_warning_json(trace: &Trace) -> String {
    let mut ft = FastTrack::new();
    ft.run(trace);
    warnings_to_json(ft.warnings())
}

fn start_daemon(config: ServeConfig) -> Daemon {
    Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("bind daemon")
}

/// Interleaved sessions from two tenants ≡ two sequential local runs,
/// compared as canonical warning JSON.
#[test]
fn interleaved_tenants_get_bit_identical_isolated_reports() {
    let trace_a = racy_trace(1_200, 21);
    let trace_b = racy_trace(900, 22);
    let bytes_a = ftb_bytes(&trace_a);
    let bytes_b = ftb_bytes(&trace_b);

    let daemon = start_daemon(ServeConfig::default());
    let addr = daemon.addr().to_string();

    let mut a = Client::connect(&addr).unwrap();
    let mut b = Client::connect(&addr).unwrap();
    a.open("tenant-a").unwrap();
    b.open("tenant-b").unwrap();

    // Interleave ragged chunks: a and b alternate on the wire.
    let mut ia = bytes_a.chunks(97);
    let mut ib = bytes_b.chunks(61);
    loop {
        let ca = ia.next();
        let cb = ib.next();
        if let Some(c) = ca {
            a.send_chunk(c).unwrap();
        }
        if let Some(c) = cb {
            b.send_chunk(c).unwrap();
        }
        if ca.is_none() && cb.is_none() {
            break;
        }
    }
    let report_a = a.close_session().unwrap();
    let report_b = b.close_session().unwrap();

    assert_eq!(report_a.events, trace_a.len() as u64);
    assert_eq!(report_b.events, trace_b.len() as u64);
    assert_eq!(report_a.dropped_events, 0);
    assert_eq!(report_b.dropped_events, 0);

    // Bit-identical to sequential local runs: the report embeds the
    // canonical warnings array, so substring equality is exact.
    let local_a = local_warning_json(&trace_a);
    let local_b = local_warning_json(&trace_b);
    assert!(local_a != local_b, "fixture traces must differ");
    assert!(
        report_a.json.contains(&format!("\"warnings\":{local_a}")),
        "tenant-a report must embed exactly its own local warnings"
    );
    assert!(
        report_b.json.contains(&format!("\"warnings\":{local_b}")),
        "tenant-b report must embed exactly its own local warnings"
    );

    daemon.stop();
    daemon.join();
}

/// Closing a session returns its share to the pool: the hello share for a
/// later session reflects only the sessions still live, and a session's
/// report accounts its peak shadow bytes.
#[test]
fn closing_a_session_returns_its_budget_share() {
    const BUDGET: usize = 1 << 20;
    let daemon = start_daemon(ServeConfig {
        mem_budget: BUDGET,
        ..ServeConfig::default()
    });
    let addr = daemon.addr().to_string();
    let trace = racy_trace(800, 31);
    let bytes = ftb_bytes(&trace);

    let mut a = Client::connect(&addr).unwrap();
    let hello_a = a.open("tenant-a").unwrap();
    assert!(
        hello_a.contains(&format!("\"budget_share_bytes\":{BUDGET}")),
        "sole session owns the whole budget: {hello_a}"
    );

    let mut b = Client::connect(&addr).unwrap();
    let hello_b = b.open("tenant-b").unwrap();
    assert!(
        hello_b.contains(&format!("\"budget_share_bytes\":{}", BUDGET / 2)),
        "two live sessions split the budget: {hello_b}"
    );
    assert_eq!(daemon.registry().current_share(), BUDGET / 2);

    // Close b: its share must return to the pool immediately.
    for c in bytes.chunks(256) {
        b.send_chunk(c).unwrap();
    }
    let report_b = b.close_session().unwrap();
    assert!(report_b.json.contains("\"peak_shadow_bytes\":"));
    assert_eq!(daemon.registry().current_share(), BUDGET);

    // A session opened now sees the restored share.
    let mut c = Client::connect(&addr).unwrap();
    let hello_c = c.open("tenant-c").unwrap();
    assert!(
        hello_c.contains(&format!("\"budget_share_bytes\":{}", BUDGET / 2)),
        "a and c split the budget after b left: {hello_c}"
    );

    daemon.stop();
    daemon.join();
}

/// The metrics scrape reflects closed sessions, and a budgeted daemon
/// exports its budget gauges.
#[test]
fn metrics_scrape_counts_sessions_and_budget() {
    let daemon = start_daemon(ServeConfig {
        mem_budget: 4 << 20,
        ..ServeConfig::default()
    });
    let addr = daemon.addr().to_string();
    let trace = racy_trace(500, 41);
    let bytes = ftb_bytes(&trace);

    let r1 = upload(&addr, "alpha", &bytes, 128).unwrap();
    let r2 = upload(&addr, "beta", &bytes, 4096).unwrap();
    assert_eq!(r1.events, r2.events);

    let mut probe = Client::connect(&addr).unwrap();
    let prom = probe.metrics().unwrap();
    assert!(prom.contains("ftrace_serve_sessions_opened 2"), "{prom}");
    assert!(prom.contains("ftrace_serve_sessions_closed 2"), "{prom}");
    assert!(prom.contains("ftrace_serve_budget_bytes"), "{prom}");
    assert!(prom.contains("ftrace_serve_report_ns"), "{prom}");

    daemon.stop();
    daemon.join();
}

/// A corrupt upload tears the session down loudly (ERROR frame) and
/// releases its budget share; the daemon keeps serving others.
#[test]
fn corrupt_upload_aborts_the_session_and_frees_its_share() {
    let daemon = start_daemon(ServeConfig {
        mem_budget: 1 << 20,
        ..ServeConfig::default()
    });
    let addr = daemon.addr().to_string();

    let mut bad = Client::connect(&addr).unwrap();
    bad.open("tenant-bad").unwrap();
    let err = bad
        .send_chunk(b"this is not an ftb header at all!!!!")
        .and_then(|_| bad.close_session())
        .unwrap_err();
    assert!(err.contains("server error"), "{err}");

    // The aborted session must not hold budget: a fresh session gets the
    // whole pool, and the daemon still serves uploads.
    let trace = racy_trace(400, 51);
    let report = upload(&addr, "tenant-good", &ftb_bytes(&trace), 512).unwrap();
    assert_eq!(report.events, trace.len() as u64);
    assert_eq!(daemon.registry().live_sessions(), 0);
    let snap = daemon.registry().snapshot();
    assert_eq!(snap.counter("sessions_aborted"), Some(1));

    daemon.stop();
    daemon.join();
}

/// A client that vanishes mid-upload (EOF with a session open) is cleaned
/// up: no leaked live session, abort counted.
#[test]
fn vanishing_client_is_reaped() {
    let daemon = start_daemon(ServeConfig::default());
    let addr = daemon.addr().to_string();
    let trace = racy_trace(600, 61);
    let bytes = ftb_bytes(&trace);

    {
        let mut ghost = Client::connect(&addr).unwrap();
        ghost.open("tenant-ghost").unwrap();
        ghost.send_chunk(&bytes[..64]).unwrap();
        // drop: TCP FIN with the session open
    }
    // The daemon reaps asynchronously; poll briefly.
    for _ in 0..100 {
        if daemon.registry().live_sessions() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(daemon.registry().live_sessions(), 0);
    assert_eq!(
        daemon.registry().snapshot().counter("sessions_aborted"),
        Some(1)
    );

    daemon.stop();
    daemon.join();
}

/// The SHUTDOWN frame stops the daemon gracefully: BYE is acknowledged
/// and the accept loop exits.
#[test]
fn shutdown_frame_stops_the_daemon() {
    let daemon = start_daemon(ServeConfig::default());
    let addr = daemon.addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    c.shutdown().unwrap();
    daemon.join(); // must return, not hang
}

/// DropOldest under a tiny lane sheds accesses (loudly) but never loses
/// the report path; Block never drops anything.
#[test]
fn overflow_policies_shed_or_stall_as_configured() {
    let trace = racy_trace(4_000, 71);
    let bytes = ftb_bytes(&trace);

    let blocking = start_daemon(ServeConfig {
        lane_cap: 64,
        overflow: OverflowPolicy::Block,
        ..ServeConfig::default()
    });
    let report = upload(&blocking.addr().to_string(), "t", &bytes, 512).unwrap();
    assert_eq!(report.events, trace.len() as u64);
    assert_eq!(report.dropped_events, 0);
    blocking.stop();
    blocking.join();

    let shedding = start_daemon(ServeConfig {
        lane_cap: 64,
        overflow: OverflowPolicy::DropOldest,
        ..ServeConfig::default()
    });
    let report = upload(&shedding.addr().to_string(), "t", &bytes, 16 << 10).unwrap();
    assert_eq!(
        report.events + report.dropped_events,
        trace.len() as u64,
        "every event is either analyzed or loudly dropped"
    );
    shedding.stop();
    shedding.join();
}
