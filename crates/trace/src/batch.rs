//! Structure-of-arrays event blocks for the fused batch analysis loop.
//!
//! The per-event hot loop of a detector pays an enum-dispatch branch and a
//! `&Op` indirection for every event. An [`EventBlock`] instead holds a
//! block of decoded events as parallel arrays of raw fields (kind, thread,
//! argument), so a batch consumer can:
//!
//! * decode `.ftb` records straight into the arrays without materializing
//!   [`Op`] values (see [`FtbReader::read_block`](crate::FtbReader::read_block)), and
//! * branch on the raw kind byte with the common access case hoisted first,
//!   touching only the lanes an event actually uses.
//!
//! Blocks are reused across batches ([`EventBlock::clear`] keeps the
//! allocations), so steady-state batch analysis performs no allocation at
//! all on the block itself.

use crate::event::{LockId, Op, VarId};
use ft_clock::Tid;

/// Raw event kind bytes, shared byte-for-byte with the `.ftb` wire format's
/// opcode field (see [`FtbWriter`](crate::FtbWriter) / [`FtbReader`](crate::FtbReader)).
pub mod opcode {
    /// `rd(t, x)` — argument is the variable id.
    pub const READ: u8 = 0;
    /// `wr(t, x)` — argument is the variable id.
    pub const WRITE: u8 = 1;
    /// `acq(t, m)` — argument is the lock id.
    pub const ACQUIRE: u8 = 2;
    /// `rel(t, m)` — argument is the lock id.
    pub const RELEASE: u8 = 3;
    /// `fork(t, u)` — argument is the forked thread id.
    pub const FORK: u8 = 4;
    /// `join(t, u)` — argument is the joined thread id.
    pub const JOIN: u8 = 5;
    /// Volatile read — argument is the variable id.
    pub const VOLATILE_READ: u8 = 6;
    /// Volatile write — argument is the variable id.
    pub const VOLATILE_WRITE: u8 = 7;
    /// `wait(t, m)` — argument is the lock id.
    pub const WAIT: u8 = 8;
    /// `notify(t, m)` — argument is the lock id.
    pub const NOTIFY: u8 = 9;
    /// Atomic-block entry marker; no argument.
    pub const ATOMIC_BEGIN: u8 = 10;
    /// Atomic-block exit marker; no argument.
    pub const ATOMIC_END: u8 = 11;
    /// `barrier_rel(T)`. In a `.ftb` stream the argument is the member
    /// count (members follow in continuation records); in an
    /// [`EventBlock`](super::EventBlock) the argument indexes the block's
    /// barrier side table.
    pub const BARRIER: u8 = 12;
    /// `.ftb`-only continuation record carrying up to two barrier members.
    /// Never appears in an [`EventBlock`](super::EventBlock).
    pub const BARRIER_CONT: u8 = 13;

    /// Returns `true` for data accesses (`rd`/`wr`) — the events a
    /// block-parallel coordinator routes to variable shards. Mirrors
    /// [`Op::is_access`](crate::Op::is_access) on the raw kind byte.
    #[inline]
    pub fn is_access(kind: u8) -> bool {
        kind <= WRITE
    }

    /// Returns `true` for the no-happens-before-effect markers (`notify`,
    /// atomic begin/end) that advance the trace position but touch no
    /// clock.
    #[inline]
    pub fn is_marker(kind: u8) -> bool {
        matches!(kind, NOTIFY | ATOMIC_BEGIN | ATOMIC_END)
    }

    /// Returns `true` for synchronization operations — everything that
    /// mutates thread/lock/volatile clocks. Mirrors
    /// [`Op::is_sync`](crate::Op::is_sync) on the raw kind byte.
    #[inline]
    pub fn is_sync(kind: u8) -> bool {
        !is_access(kind) && !is_marker(kind) && kind != BARRIER_CONT
    }
}

/// Default number of events per block: large enough to amortize dispatch
/// and refill overhead, small enough to stay cache-resident (~48 KiB of
/// lanes).
pub const DEFAULT_BLOCK_EVENTS: usize = 4096;

/// A block of decoded events in structure-of-arrays layout.
///
/// Entry `i` is `(kind(i), tid(i), arg(i))`; the meaning of the argument
/// depends on the kind (see [`opcode`]). Barrier events store their member
/// sets out of line in a side table indexed by the argument, keeping the
/// main lanes fixed-width.
#[derive(Clone, Debug, Default)]
pub struct EventBlock {
    kinds: Vec<u8>,
    tids: Vec<u32>,
    args: Vec<u32>,
    barriers: Vec<Vec<Tid>>,
}

impl EventBlock {
    /// An empty block with lane capacity for `events` entries.
    pub fn with_capacity(events: usize) -> Self {
        EventBlock {
            kinds: Vec::with_capacity(events),
            tids: Vec::with_capacity(events),
            args: Vec::with_capacity(events),
            barriers: Vec::new(),
        }
    }

    /// Number of events in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Returns `true` if the block holds no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Empties the block, keeping the lane allocations for reuse.
    pub fn clear(&mut self) {
        self.kinds.clear();
        self.tids.clear();
        self.args.clear();
        self.barriers.clear();
    }

    /// Appends a non-barrier event from its raw fields.
    #[inline]
    pub fn push_simple(&mut self, kind: u8, tid: u32, arg: u32) {
        debug_assert!(kind < opcode::BARRIER, "not a simple event kind: {kind}");
        self.kinds.push(kind);
        self.tids.push(tid);
        self.args.push(arg);
    }

    /// Appends a barrier release; the member set goes to the side table.
    pub fn push_barrier(&mut self, members: Vec<Tid>) {
        self.kinds.push(opcode::BARRIER);
        self.tids.push(0);
        self.args.push(self.barriers.len() as u32);
        self.barriers.push(members);
    }

    /// Appends an [`Op`].
    pub fn push_op(&mut self, op: &Op) {
        match *op {
            Op::Read(t, x) => self.push_simple(opcode::READ, t.as_u32(), x.as_u32()),
            Op::Write(t, x) => self.push_simple(opcode::WRITE, t.as_u32(), x.as_u32()),
            Op::Acquire(t, m) => self.push_simple(opcode::ACQUIRE, t.as_u32(), m.as_u32()),
            Op::Release(t, m) => self.push_simple(opcode::RELEASE, t.as_u32(), m.as_u32()),
            Op::Fork(t, u) => self.push_simple(opcode::FORK, t.as_u32(), u.as_u32()),
            Op::Join(t, u) => self.push_simple(opcode::JOIN, t.as_u32(), u.as_u32()),
            Op::VolatileRead(t, x) => {
                self.push_simple(opcode::VOLATILE_READ, t.as_u32(), x.as_u32())
            }
            Op::VolatileWrite(t, x) => {
                self.push_simple(opcode::VOLATILE_WRITE, t.as_u32(), x.as_u32())
            }
            Op::Wait(t, m) => self.push_simple(opcode::WAIT, t.as_u32(), m.as_u32()),
            Op::Notify(t, m) => self.push_simple(opcode::NOTIFY, t.as_u32(), m.as_u32()),
            Op::AtomicBegin(t) => self.push_simple(opcode::ATOMIC_BEGIN, t.as_u32(), 0),
            Op::AtomicEnd(t) => self.push_simple(opcode::ATOMIC_END, t.as_u32(), 0),
            Op::BarrierRelease(ref members) => self.push_barrier(members.clone()),
        }
    }

    /// Refills the block from a slice of in-memory events: clears it, then
    /// appends every op in `ops`. This is the in-memory counterpart of
    /// [`FtbReader::read_block`](crate::FtbReader::read_block), letting a
    /// chunked consumer drive one code path for both trace sources.
    /// Returns the number of events now in the block.
    pub fn refill_from_ops(&mut self, ops: &[Op]) -> usize {
        self.clear();
        for op in ops {
            self.push_op(op);
        }
        self.len()
    }

    /// The raw kind byte of entry `i` (an [`opcode`] constant).
    #[inline]
    pub fn kind(&self, i: usize) -> u8 {
        self.kinds[i]
    }

    /// The thread of entry `i` (zero for barriers, which have no single
    /// thread).
    #[inline]
    pub fn tid(&self, i: usize) -> Tid {
        Tid::new(self.tids[i])
    }

    /// The raw argument of entry `i`; interpretation depends on the kind.
    #[inline]
    pub fn arg(&self, i: usize) -> u32 {
        self.args[i]
    }

    /// The member set of the barrier stored at side-table slot `slot`
    /// (i.e. `arg(i)` of a [`opcode::BARRIER`] entry).
    #[inline]
    pub fn barrier(&self, slot: u32) -> &[Tid] {
        &self.barriers[slot as usize]
    }

    /// Reconstructs entry `i` as an [`Op`] (allocates only for barriers).
    pub fn op(&self, i: usize) -> Op {
        let t = Tid::new(self.tids[i]);
        let a = self.args[i];
        match self.kinds[i] {
            opcode::READ => Op::Read(t, VarId::new(a)),
            opcode::WRITE => Op::Write(t, VarId::new(a)),
            opcode::ACQUIRE => Op::Acquire(t, LockId::new(a)),
            opcode::RELEASE => Op::Release(t, LockId::new(a)),
            opcode::FORK => Op::Fork(t, Tid::new(a)),
            opcode::JOIN => Op::Join(t, Tid::new(a)),
            opcode::VOLATILE_READ => Op::VolatileRead(t, VarId::new(a)),
            opcode::VOLATILE_WRITE => Op::VolatileWrite(t, VarId::new(a)),
            opcode::WAIT => Op::Wait(t, LockId::new(a)),
            opcode::NOTIFY => Op::Notify(t, LockId::new(a)),
            opcode::ATOMIC_BEGIN => Op::AtomicBegin(t),
            opcode::ATOMIC_END => Op::AtomicEnd(t),
            opcode::BARRIER => Op::BarrierRelease(self.barriers[a as usize].clone()),
            k => unreachable!("invalid kind byte {k} in EventBlock"),
        }
    }

    /// Iterates over the block's entries as reconstructed [`Op`]s.
    pub fn ops(&self) -> impl Iterator<Item = Op> + '_ {
        (0..self.len()).map(|i| self.op(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<Op> {
        let (t0, t1) = (Tid::new(0), Tid::new(1));
        vec![
            Op::Fork(t0, t1),
            Op::Write(t0, VarId::new(3)),
            Op::Read(t1, VarId::new(3)),
            Op::Acquire(t1, LockId::new(0)),
            Op::Notify(t1, LockId::new(0)),
            Op::Wait(t1, LockId::new(0)),
            Op::Release(t1, LockId::new(0)),
            Op::VolatileWrite(t0, VarId::new(1)),
            Op::VolatileRead(t1, VarId::new(1)),
            Op::AtomicBegin(t0),
            Op::AtomicEnd(t0),
            Op::BarrierRelease(vec![t0, t1]),
            Op::Join(t0, t1),
        ]
    }

    #[test]
    fn push_op_then_op_round_trips_every_variant() {
        let ops = sample_ops();
        let mut block = EventBlock::with_capacity(ops.len());
        for op in &ops {
            block.push_op(op);
        }
        assert_eq!(block.len(), ops.len());
        let back: Vec<Op> = block.ops().collect();
        assert_eq!(back, ops);
    }

    #[test]
    fn clear_keeps_capacity_and_resets_len() {
        let mut block = EventBlock::with_capacity(4);
        for op in sample_ops() {
            block.push_op(&op);
        }
        block.clear();
        assert!(block.is_empty());
        assert!(block.kinds.capacity() >= 4);
    }

    #[test]
    fn refill_from_ops_matches_push_op_and_reuses_lanes() {
        let ops = sample_ops();
        let mut block = EventBlock::with_capacity(ops.len());
        assert_eq!(block.refill_from_ops(&ops), ops.len());
        let back: Vec<Op> = block.ops().collect();
        assert_eq!(back, ops);
        // Refilling with a shorter chunk drops the old contents entirely.
        assert_eq!(block.refill_from_ops(&ops[..3]), 3);
        assert_eq!(block.ops().collect::<Vec<_>>(), ops[..3].to_vec());
    }

    #[test]
    fn opcode_classes_partition_every_kind() {
        let ops = sample_ops();
        let mut block = EventBlock::default();
        for op in &ops {
            block.push_op(op);
        }
        for (i, op) in ops.iter().enumerate() {
            let k = block.kind(i);
            assert_eq!(opcode::is_access(k), op.is_access(), "{op}");
            assert_eq!(opcode::is_sync(k), op.is_sync(), "{op}");
            assert_eq!(
                opcode::is_marker(k),
                !op.is_access() && !op.is_sync(),
                "{op}"
            );
        }
    }

    #[test]
    fn raw_lane_accessors_expose_fields() {
        let mut block = EventBlock::default();
        block.push_op(&Op::Write(Tid::new(7), VarId::new(9)));
        block.push_op(&Op::BarrierRelease(vec![Tid::new(1), Tid::new(2)]));
        assert_eq!(block.kind(0), opcode::WRITE);
        assert_eq!(block.tid(0), Tid::new(7));
        assert_eq!(block.arg(0), 9);
        assert_eq!(block.kind(1), opcode::BARRIER);
        assert_eq!(block.barrier(block.arg(1)), &[Tid::new(1), Tid::new(2)]);
    }
}
