//! Incremental trace construction with feasibility enforcement (§2.1).

use crate::event::{LockId, ObjId, Op, VarId};
use crate::trace::Trace;
use ft_clock::Tid;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why a sequence of operations is not a feasible trace (§2.1).
///
/// The constraints, quoting the paper: (1) no thread acquires a lock
/// previously acquired but not released, (2) no thread releases a lock it
/// did not previously acquire, (3) there are no instructions of a thread `u`
/// preceding `fork(t, u)` or following `join(v, u)`, and (4) there is at
/// least one instruction of `u` between `fork(t, u)` and `join(v, u)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeasibilityError {
    /// Constraint (1): the lock is already held.
    LockAlreadyHeld {
        /// Index of the offending event.
        index: usize,
        /// The lock being acquired.
        lock: LockId,
        /// The thread that currently holds it.
        holder: Tid,
        /// The thread attempting the acquire.
        acquirer: Tid,
    },
    /// Constraint (2): releasing (or waiting/notifying on) a lock the thread
    /// does not hold.
    LockNotHeld {
        /// Index of the offending event.
        index: usize,
        /// The lock involved.
        lock: LockId,
        /// The thread attempting the operation.
        thread: Tid,
    },
    /// Constraint (3): a forked thread had already performed operations.
    ForkOfRunningThread {
        /// Index of the offending event.
        index: usize,
        /// The thread being forked.
        child: Tid,
    },
    /// A thread forks or joins itself.
    SelfForkOrJoin {
        /// Index of the offending event.
        index: usize,
        /// The thread involved.
        thread: Tid,
    },
    /// Constraint (4): joining a thread that never ran after its fork, or
    /// was never forked/started at all.
    JoinOfUnstartedThread {
        /// Index of the offending event.
        index: usize,
        /// The thread being joined.
        child: Tid,
    },
    /// Constraint (3): a thread performed an operation after being joined,
    /// was forked after being joined, or was joined twice.
    ThreadAlreadyJoined {
        /// Index of the offending event.
        index: usize,
        /// The joined thread.
        thread: Tid,
    },
    /// An `atomic_end` with no matching `atomic_begin`.
    UnmatchedAtomicEnd {
        /// Index of the offending event.
        index: usize,
        /// The thread involved.
        thread: Tid,
    },
    /// A barrier release with an empty or duplicated thread set.
    MalformedBarrier {
        /// Index of the offending event.
        index: usize,
    },
}

impl fmt::Display for FeasibilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeasibilityError::LockAlreadyHeld {
                index,
                lock,
                holder,
                acquirer,
            } => write!(
                f,
                "event {index}: {acquirer} acquires {lock} already held by {holder}"
            ),
            FeasibilityError::LockNotHeld {
                index,
                lock,
                thread,
            } => {
                write!(f, "event {index}: {thread} does not hold {lock}")
            }
            FeasibilityError::ForkOfRunningThread { index, child } => {
                write!(f, "event {index}: fork of already-running thread {child}")
            }
            FeasibilityError::SelfForkOrJoin { index, thread } => {
                write!(f, "event {index}: {thread} forks or joins itself")
            }
            FeasibilityError::JoinOfUnstartedThread { index, child } => {
                write!(
                    f,
                    "event {index}: join of thread {child} that has not run since its fork"
                )
            }
            FeasibilityError::ThreadAlreadyJoined { index, thread } => {
                write!(f, "event {index}: thread {thread} was already joined")
            }
            FeasibilityError::UnmatchedAtomicEnd { index, thread } => {
                write!(
                    f,
                    "event {index}: atomic_end by {thread} without atomic_begin"
                )
            }
            FeasibilityError::MalformedBarrier { index } => {
                write!(
                    f,
                    "event {index}: barrier release set is empty or has duplicates"
                )
            }
        }
    }
}

impl Error for FeasibilityError {}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadPhase {
    /// Never seen. May start spontaneously (pre-existing thread) or by fork.
    Unseen,
    /// Forked but has not yet executed an instruction.
    Forked,
    /// Has executed at least one instruction.
    Running,
    /// Joined; may not act again.
    Joined,
}

/// Builds a [`Trace`] while enforcing the §2.1 feasibility constraints on
/// every appended operation.
///
/// Threads that perform operations without an explicit `fork` are treated as
/// pre-existing (like the main thread). Use [`TraceBuilder::with_threads`]
/// to pre-register the id space.
///
/// # Example
///
/// ```
/// use ft_trace::{TraceBuilder, VarId, LockId};
/// use ft_clock::Tid;
///
/// let mut b = TraceBuilder::new();
/// let (t0, t1) = (Tid::new(0), Tid::new(1));
/// b.fork(t0, t1)?;
/// b.write(t1, VarId::new(0))?;
/// b.join(t0, t1)?;
/// b.read(t0, VarId::new(0))?;
/// let trace = b.finish();
/// assert_eq!(trace.len(), 4);
/// # Ok::<(), ft_trace::FeasibilityError>(())
/// ```
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<Op>,
    phases: Vec<ThreadPhase>,
    /// Current holder of each lock.
    holders: HashMap<LockId, Tid>,
    /// Atomic-block nesting depth per thread.
    atomic_depth: HashMap<Tid, u32>,
    n_vars: u32,
    n_locks: u32,
    var_objects: HashMap<VarId, ObjId>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with `n` pre-existing threads (`Tid` 0..n), so the
    /// resulting trace reports at least `n` threads even if some never act.
    pub fn with_threads(n: u32) -> Self {
        let mut b = Self::new();
        b.phases = vec![ThreadPhase::Running; n as usize];
        b
    }

    fn phase(&self, t: Tid) -> ThreadPhase {
        self.phases
            .get(t.as_usize())
            .copied()
            .unwrap_or(ThreadPhase::Unseen)
    }

    fn set_phase(&mut self, t: Tid, p: ThreadPhase) {
        let idx = t.as_usize();
        if idx >= self.phases.len() {
            self.phases.resize(idx + 1, ThreadPhase::Unseen);
        }
        self.phases[idx] = p;
    }

    /// Marks `t` as having executed an instruction; errors if it was joined.
    fn step(&mut self, t: Tid) -> Result<(), FeasibilityError> {
        match self.phase(t) {
            ThreadPhase::Joined => Err(FeasibilityError::ThreadAlreadyJoined {
                index: self.events.len(),
                thread: t,
            }),
            _ => {
                self.set_phase(t, ThreadPhase::Running);
                Ok(())
            }
        }
    }

    fn note_var(&mut self, x: VarId) {
        self.n_vars = self.n_vars.max(x.as_u32() + 1);
    }

    fn note_lock(&mut self, m: LockId) {
        self.n_locks = self.n_locks.max(m.as_u32() + 1);
    }

    /// Appends an arbitrary operation, checking feasibility.
    ///
    /// # Errors
    ///
    /// Returns a [`FeasibilityError`] (and leaves the builder unchanged) if
    /// the operation violates the §2.1 constraints.
    pub fn push(&mut self, op: Op) -> Result<(), FeasibilityError> {
        let index = self.events.len();
        match &op {
            Op::Read(t, x) | Op::Write(t, x) => {
                self.step(*t)?;
                self.note_var(*x);
            }
            Op::VolatileRead(t, x) | Op::VolatileWrite(t, x) => {
                self.step(*t)?;
                self.note_var(*x);
            }
            Op::Acquire(t, m) => {
                if let Some(&holder) = self.holders.get(m) {
                    return Err(FeasibilityError::LockAlreadyHeld {
                        index,
                        lock: *m,
                        holder,
                        acquirer: *t,
                    });
                }
                self.step(*t)?;
                self.note_lock(*m);
                self.holders.insert(*m, *t);
            }
            Op::Release(t, m) => {
                if self.holders.get(m) != Some(t) {
                    return Err(FeasibilityError::LockNotHeld {
                        index,
                        lock: *m,
                        thread: *t,
                    });
                }
                self.step(*t)?;
                self.note_lock(*m);
                self.holders.remove(m);
            }
            Op::Wait(t, m) | Op::Notify(t, m) => {
                // wait releases and re-acquires m; notify requires holding m.
                if self.holders.get(m) != Some(t) {
                    return Err(FeasibilityError::LockNotHeld {
                        index,
                        lock: *m,
                        thread: *t,
                    });
                }
                self.step(*t)?;
                self.note_lock(*m);
            }
            Op::Fork(t, u) => {
                if t == u {
                    return Err(FeasibilityError::SelfForkOrJoin { index, thread: *t });
                }
                match self.phase(*u) {
                    ThreadPhase::Unseen => {}
                    ThreadPhase::Joined => {
                        return Err(FeasibilityError::ThreadAlreadyJoined { index, thread: *u })
                    }
                    _ => return Err(FeasibilityError::ForkOfRunningThread { index, child: *u }),
                }
                self.step(*t)?;
                self.set_phase(*u, ThreadPhase::Forked);
            }
            Op::Join(t, u) => {
                if t == u {
                    return Err(FeasibilityError::SelfForkOrJoin { index, thread: *t });
                }
                match self.phase(*u) {
                    ThreadPhase::Running => {}
                    ThreadPhase::Joined => {
                        return Err(FeasibilityError::ThreadAlreadyJoined { index, thread: *u })
                    }
                    _ => return Err(FeasibilityError::JoinOfUnstartedThread { index, child: *u }),
                }
                self.step(*t)?;
                self.set_phase(*u, ThreadPhase::Joined);
            }
            Op::BarrierRelease(ts) => {
                if ts.is_empty() {
                    return Err(FeasibilityError::MalformedBarrier { index });
                }
                let mut seen = std::collections::HashSet::new();
                for t in ts {
                    if !seen.insert(*t) {
                        return Err(FeasibilityError::MalformedBarrier { index });
                    }
                    if self.phase(*t) == ThreadPhase::Joined {
                        return Err(FeasibilityError::ThreadAlreadyJoined { index, thread: *t });
                    }
                }
                for t in ts.clone() {
                    self.set_phase(t, ThreadPhase::Running);
                }
            }
            Op::AtomicBegin(t) => {
                self.step(*t)?;
                *self.atomic_depth.entry(*t).or_insert(0) += 1;
            }
            Op::AtomicEnd(t) => {
                if self.atomic_depth.get(t).copied().unwrap_or(0) == 0 {
                    return Err(FeasibilityError::UnmatchedAtomicEnd { index, thread: *t });
                }
                self.step(*t)?;
                *self.atomic_depth.get_mut(t).expect("depth checked nonzero") -= 1;
            }
        }
        self.events.push(op);
        Ok(())
    }

    /// Appends `rd(t, x)`.
    ///
    /// # Errors
    ///
    /// Propagates feasibility violations; see [`TraceBuilder::push`].
    pub fn read(&mut self, t: Tid, x: VarId) -> Result<(), FeasibilityError> {
        self.push(Op::Read(t, x))
    }

    /// Appends `wr(t, x)`.
    ///
    /// # Errors
    ///
    /// Propagates feasibility violations; see [`TraceBuilder::push`].
    pub fn write(&mut self, t: Tid, x: VarId) -> Result<(), FeasibilityError> {
        self.push(Op::Write(t, x))
    }

    /// Appends `acq(t, m)`.
    ///
    /// # Errors
    ///
    /// Propagates feasibility violations; see [`TraceBuilder::push`].
    pub fn acquire(&mut self, t: Tid, m: LockId) -> Result<(), FeasibilityError> {
        self.push(Op::Acquire(t, m))
    }

    /// Appends `rel(t, m)`.
    ///
    /// # Errors
    ///
    /// Propagates feasibility violations; see [`TraceBuilder::push`].
    pub fn release(&mut self, t: Tid, m: LockId) -> Result<(), FeasibilityError> {
        self.push(Op::Release(t, m))
    }

    /// Appends `acq(t, m)`, runs `body` on this builder, then appends
    /// `rel(t, m)` — the lock-scoped idiom.
    ///
    /// # Errors
    ///
    /// Propagates feasibility violations from the acquire, the body, or the
    /// release.
    pub fn release_after_acquire<F>(
        &mut self,
        t: Tid,
        m: LockId,
        body: F,
    ) -> Result<(), FeasibilityError>
    where
        F: FnOnce(&mut Self) -> Result<(), FeasibilityError>,
    {
        self.acquire(t, m)?;
        body(self)?;
        self.release(t, m)
    }

    /// Appends `fork(t, u)`.
    ///
    /// # Errors
    ///
    /// Propagates feasibility violations; see [`TraceBuilder::push`].
    pub fn fork(&mut self, t: Tid, u: Tid) -> Result<(), FeasibilityError> {
        self.push(Op::Fork(t, u))
    }

    /// Appends `join(t, u)`.
    ///
    /// # Errors
    ///
    /// Propagates feasibility violations; see [`TraceBuilder::push`].
    pub fn join(&mut self, t: Tid, u: Tid) -> Result<(), FeasibilityError> {
        self.push(Op::Join(t, u))
    }

    /// Appends a volatile read.
    ///
    /// # Errors
    ///
    /// Propagates feasibility violations; see [`TraceBuilder::push`].
    pub fn volatile_read(&mut self, t: Tid, x: VarId) -> Result<(), FeasibilityError> {
        self.push(Op::VolatileRead(t, x))
    }

    /// Appends a volatile write.
    ///
    /// # Errors
    ///
    /// Propagates feasibility violations; see [`TraceBuilder::push`].
    pub fn volatile_write(&mut self, t: Tid, x: VarId) -> Result<(), FeasibilityError> {
        self.push(Op::VolatileWrite(t, x))
    }

    /// Appends a barrier release of the thread set `threads`.
    ///
    /// # Errors
    ///
    /// Propagates feasibility violations; see [`TraceBuilder::push`].
    pub fn barrier_release(&mut self, threads: Vec<Tid>) -> Result<(), FeasibilityError> {
        self.push(Op::BarrierRelease(threads))
    }

    /// Assigns variable `x` to owning object `obj` for the coarse-grain
    /// analysis. Unassigned variables own themselves.
    pub fn set_var_object(&mut self, x: VarId, obj: ObjId) {
        self.var_objects.insert(x, obj);
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finishes construction. Held locks and open atomic blocks are allowed:
    /// a feasible trace may be the prefix of a longer execution.
    pub fn finish(self) -> Trace {
        let n_threads = self.phases.len() as u32;
        let n_vars = self.n_vars;
        let var_objects = (0..n_vars)
            .map(|i| {
                self.var_objects
                    .get(&VarId::new(i))
                    .copied()
                    .unwrap_or(ObjId::new(i))
            })
            .collect();
        Trace {
            events: self.events,
            n_threads,
            n_vars,
            n_locks: self.n_locks,
            var_objects,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: Tid = Tid::new(0);
    const T1: Tid = Tid::new(1);
    const T2: Tid = Tid::new(2);
    const X: VarId = VarId::new(0);
    const M: LockId = LockId::new(0);

    #[test]
    fn double_acquire_rejected() {
        let mut b = TraceBuilder::new();
        b.acquire(T0, M).unwrap();
        let err = b.acquire(T1, M).unwrap_err();
        assert!(matches!(err, FeasibilityError::LockAlreadyHeld { .. }));
        // Self double-acquire (re-entrancy is filtered upstream) too.
        let err = b.acquire(T0, M).unwrap_err();
        assert!(matches!(err, FeasibilityError::LockAlreadyHeld { .. }));
    }

    #[test]
    fn release_without_acquire_rejected() {
        let mut b = TraceBuilder::new();
        let err = b.release(T0, M).unwrap_err();
        assert!(matches!(err, FeasibilityError::LockNotHeld { .. }));
        b.acquire(T0, M).unwrap();
        let err = b.release(T1, M).unwrap_err();
        assert!(matches!(err, FeasibilityError::LockNotHeld { .. }));
    }

    #[test]
    fn wait_and_notify_require_the_lock() {
        let mut b = TraceBuilder::new();
        assert!(b.push(Op::Wait(T0, M)).is_err());
        assert!(b.push(Op::Notify(T0, M)).is_err());
        b.acquire(T0, M).unwrap();
        assert!(b.push(Op::Wait(T0, M)).is_ok());
        assert!(b.push(Op::Notify(T0, M)).is_ok());
    }

    #[test]
    fn fork_constraints() {
        let mut b = TraceBuilder::new();
        b.write(T1, X).unwrap(); // T1 pre-exists
        let err = b.fork(T0, T1).unwrap_err();
        assert!(matches!(err, FeasibilityError::ForkOfRunningThread { .. }));
        let err = b.fork(T0, T0).unwrap_err();
        assert!(matches!(err, FeasibilityError::SelfForkOrJoin { .. }));
    }

    #[test]
    fn join_constraints() {
        let mut b = TraceBuilder::new();
        // Join of a never-started thread.
        let err = b.join(T0, T1).unwrap_err();
        assert!(matches!(
            err,
            FeasibilityError::JoinOfUnstartedThread { .. }
        ));
        // Join of a forked thread that never ran (constraint 4).
        b.fork(T0, T1).unwrap();
        let err = b.join(T0, T1).unwrap_err();
        assert!(matches!(
            err,
            FeasibilityError::JoinOfUnstartedThread { .. }
        ));
        // After one instruction the join is fine; a second join is not.
        b.write(T1, X).unwrap();
        b.join(T0, T1).unwrap();
        let err = b.join(T0, T1).unwrap_err();
        assert!(matches!(err, FeasibilityError::ThreadAlreadyJoined { .. }));
        // The joined thread may not act again.
        let err = b.write(T1, X).unwrap_err();
        assert!(matches!(err, FeasibilityError::ThreadAlreadyJoined { .. }));
    }

    #[test]
    fn barrier_constraints() {
        let mut b = TraceBuilder::new();
        assert!(matches!(
            b.barrier_release(vec![]).unwrap_err(),
            FeasibilityError::MalformedBarrier { .. }
        ));
        assert!(matches!(
            b.barrier_release(vec![T0, T0]).unwrap_err(),
            FeasibilityError::MalformedBarrier { .. }
        ));
        b.barrier_release(vec![T0, T1, T2]).unwrap();
    }

    #[test]
    fn atomic_markers_must_nest() {
        let mut b = TraceBuilder::new();
        let err = b.push(Op::AtomicEnd(T0)).unwrap_err();
        assert!(matches!(err, FeasibilityError::UnmatchedAtomicEnd { .. }));
        b.push(Op::AtomicBegin(T0)).unwrap();
        b.push(Op::AtomicBegin(T0)).unwrap();
        b.push(Op::AtomicEnd(T0)).unwrap();
        b.push(Op::AtomicEnd(T0)).unwrap();
        assert!(b.push(Op::AtomicEnd(T0)).is_err());
    }

    #[test]
    fn failed_push_leaves_builder_unchanged() {
        let mut b = TraceBuilder::new();
        b.acquire(T0, M).unwrap();
        let len = b.len();
        assert!(b.acquire(T1, M).is_err());
        assert_eq!(b.len(), len);
        // T0 still holds the lock and can release it.
        b.release(T0, M).unwrap();
    }

    #[test]
    fn with_threads_preregisters_ids() {
        let b = TraceBuilder::with_threads(4);
        let trace = b.finish();
        assert_eq!(trace.n_threads(), 4);
    }

    #[test]
    fn error_messages_are_informative() {
        let mut b = TraceBuilder::new();
        b.acquire(T0, M).unwrap();
        let err = b.acquire(T1, M).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("T1") && msg.contains("m0") && msg.contains("T0"),
            "{msg}"
        );
    }
}
