//! Trace operations (Figure 1 of the paper, plus the §4 extensions).

use ft_clock::Tid;
use std::fmt;

/// Identifier of a shared variable (an object field or array element in the
/// paper's Java setting).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(u32);

impl VarId {
    /// Creates a variable id from its dense index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        VarId(raw)
    }

    /// Returns the dense index.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns the dense index as a `usize`.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VarId({})", self.0)
    }
}

/// Identifier of a lock.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(u32);

impl LockId {
    /// Creates a lock id from its dense index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        LockId(raw)
    }

    /// Returns the dense index.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns the dense index as a `usize`.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Debug for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LockId({})", self.0)
    }
}

/// Identifier of the object that owns a variable, for the coarse-grain
/// analysis of §4 ("Granularity"): the coarse analysis treats all fields of
/// an object as a single entity.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(u32);

impl ObjId {
    /// Creates an object id from its dense index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        ObjId(raw)
    }

    /// Returns the dense index.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns the dense index as a `usize`.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjId({})", self.0)
    }
}

/// Whether a memory access reads or writes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A read access `rd(t, x)`.
    Read,
    /// A write access `wr(t, x)`.
    Write,
}

impl AccessKind {
    /// Two accesses *conflict* if they touch the same variable and at least
    /// one is a write (§2.1).
    #[inline]
    pub fn conflicts_with(self, other: AccessKind) -> bool {
        matches!(self, AccessKind::Write) || matches!(other, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// One operation of a multithreaded trace.
///
/// The first six variants are the Figure 1 core; the rest are the extensions
/// of §4 ("Extensions") plus the atomic-block markers consumed by the
/// §5.2 downstream checkers (Atomizer/Velodrome/SingleTrack). Markers have no
/// effect on the happens-before relation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// `rd(t, x)`: thread `t` reads variable `x`.
    Read(Tid, VarId),
    /// `wr(t, x)`: thread `t` writes variable `x`.
    Write(Tid, VarId),
    /// `acq(t, m)`: thread `t` acquires lock `m`.
    Acquire(Tid, LockId),
    /// `rel(t, m)`: thread `t` releases lock `m`.
    Release(Tid, LockId),
    /// `fork(t, u)`: thread `t` forks thread `u`.
    Fork(Tid, Tid),
    /// `join(t, u)`: thread `t` blocks until thread `u` terminates.
    Join(Tid, Tid),
    /// Volatile read of `x` by `t`: synchronizes with the last volatile
    /// write per the Java memory model (§4).
    VolatileRead(Tid, VarId),
    /// Volatile write of `x` by `t`.
    VolatileWrite(Tid, VarId),
    /// `wait(t, m)`: modeled as a release of `m` immediately followed by an
    /// acquire (§4). The simulator emits explicit release/acquire pairs for
    /// truly blocking waits; this single-op form exists for hand-written
    /// traces and online instrumentation.
    Wait(Tid, LockId),
    /// `notify(t, m)`: affects scheduling only; induces no happens-before
    /// edge and is ignored by the analyses (§4).
    Notify(Tid, LockId),
    /// `barrier_rel(T)`: the set of threads `T` is simultaneously released
    /// from a barrier (§4): each thread's next step happens after all
    /// pre-barrier steps of every thread in `T`.
    BarrierRelease(Vec<Tid>),
    /// Marker: thread `t` enters a block it expects to be atomic
    /// (consumed by the §5.2 atomicity/determinism checkers).
    AtomicBegin(Tid),
    /// Marker: thread `t` leaves its current atomic block.
    AtomicEnd(Tid),
}

impl Op {
    /// The thread performing this operation, or `None` for
    /// [`Op::BarrierRelease`], which involves a set of threads.
    pub fn tid(&self) -> Option<Tid> {
        match *self {
            Op::Read(t, _)
            | Op::Write(t, _)
            | Op::Acquire(t, _)
            | Op::Release(t, _)
            | Op::Fork(t, _)
            | Op::Join(t, _)
            | Op::VolatileRead(t, _)
            | Op::VolatileWrite(t, _)
            | Op::Wait(t, _)
            | Op::Notify(t, _)
            | Op::AtomicBegin(t)
            | Op::AtomicEnd(t) => Some(t),
            Op::BarrierRelease(_) => None,
        }
    }

    /// For memory accesses, the `(variable, kind)` pair; `None` otherwise.
    /// Volatile accesses are synchronization, not data accesses, so they
    /// return `None`.
    pub fn access(&self) -> Option<(VarId, AccessKind)> {
        match *self {
            Op::Read(_, x) => Some((x, AccessKind::Read)),
            Op::Write(_, x) => Some((x, AccessKind::Write)),
            _ => None,
        }
    }

    /// Returns `true` for data reads and writes (the 96%+ of monitored
    /// operations that FastTrack optimizes).
    #[inline]
    pub fn is_access(&self) -> bool {
        matches!(self, Op::Read(..) | Op::Write(..))
    }

    /// Returns `true` for synchronization operations (everything except data
    /// accesses and the no-HB-effect markers).
    pub fn is_sync(&self) -> bool {
        !matches!(
            self,
            Op::Read(..) | Op::Write(..) | Op::AtomicBegin(_) | Op::AtomicEnd(_) | Op::Notify(..)
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read(t, x) => write!(f, "rd({t},{x})"),
            Op::Write(t, x) => write!(f, "wr({t},{x})"),
            Op::Acquire(t, m) => write!(f, "acq({t},{m})"),
            Op::Release(t, m) => write!(f, "rel({t},{m})"),
            Op::Fork(t, u) => write!(f, "fork({t},{u})"),
            Op::Join(t, u) => write!(f, "join({t},{u})"),
            Op::VolatileRead(t, x) => write!(f, "vol_rd({t},{x})"),
            Op::VolatileWrite(t, x) => write!(f, "vol_wr({t},{x})"),
            Op::Wait(t, m) => write!(f, "wait({t},{m})"),
            Op::Notify(t, m) => write!(f, "notify({t},{m})"),
            Op::BarrierRelease(ts) => {
                write!(f, "barrier_rel({{")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}})")
            }
            Op::AtomicBegin(t) => write!(f, "atomic_begin({t})"),
            Op::AtomicEnd(t) => write!(f, "atomic_end({t})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflicts_require_a_write() {
        assert!(!AccessKind::Read.conflicts_with(AccessKind::Read));
        assert!(AccessKind::Read.conflicts_with(AccessKind::Write));
        assert!(AccessKind::Write.conflicts_with(AccessKind::Read));
        assert!(AccessKind::Write.conflicts_with(AccessKind::Write));
    }

    #[test]
    fn op_classification() {
        let t = Tid::new(0);
        let x = VarId::new(1);
        let m = LockId::new(2);
        assert!(Op::Read(t, x).is_access());
        assert!(!Op::Read(t, x).is_sync());
        assert!(Op::Acquire(t, m).is_sync());
        assert!(Op::VolatileRead(t, x).is_sync());
        assert!(!Op::VolatileRead(t, x).is_access());
        assert!(!Op::Notify(t, m).is_sync());
        assert!(!Op::AtomicBegin(t).is_sync());
        assert!(Op::BarrierRelease(vec![t]).is_sync());
    }

    #[test]
    fn tid_of_barrier_is_none() {
        assert_eq!(Op::BarrierRelease(vec![Tid::new(0)]).tid(), None);
        assert_eq!(Op::Fork(Tid::new(1), Tid::new(2)).tid(), Some(Tid::new(1)));
    }

    #[test]
    fn access_extraction() {
        let t = Tid::new(0);
        let x = VarId::new(3);
        assert_eq!(Op::Read(t, x).access(), Some((x, AccessKind::Read)));
        assert_eq!(Op::Write(t, x).access(), Some((x, AccessKind::Write)));
        assert_eq!(Op::VolatileWrite(t, x).access(), None);
        assert_eq!(Op::Acquire(t, LockId::new(0)).access(), None);
    }

    #[test]
    fn display_matches_paper_syntax() {
        let t = Tid::new(1);
        assert_eq!(Op::Read(t, VarId::new(0)).to_string(), "rd(T1,x0)");
        assert_eq!(Op::Fork(t, Tid::new(2)).to_string(), "fork(T1,T2)");
        assert_eq!(
            Op::BarrierRelease(vec![Tid::new(0), t]).to_string(),
            "barrier_rel({T0,T1})"
        );
    }
}
