//! The `.ftb` compact binary trace format.
//!
//! `.ftrace` JSON (see [`crate::Trace::to_json`]) is convenient for hand
//! editing but costs ~25 bytes and a parser branch per event. `.ftb` is the
//! throughput-oriented sibling: a fixed-width, little-endian binary encoding
//! that streams — [`FtbWriter`] appends records as events arrive, and
//! [`FtbReader`] decodes incrementally from any [`Read`], so traces larger
//! than RAM can be recorded and analyzed without ever materializing a
//! `Vec<Op>`.
//!
//! # Layout
//!
//! All integers are little-endian regardless of host.
//!
//! ```text
//! header (32 bytes):
//!   [0..4)   magic    "FTB\0"
//!   [4..8)   version  u32 (currently 1)
//!   [8..12)  n_threads u32
//!   [12..16) n_vars    u32
//!   [16..20) n_locks   u32
//!   [20..24) flags     u32 (bit 0: a var_objects table follows the header)
//!   [24..32) n_records u64 (u64::MAX = unknown, read records to EOF)
//! var_objects table (optional, n_vars × u32): owning object per variable
//! records (12 bytes each):
//!   [0]      opcode   (see [`crate::batch::opcode`])
//!   [1]      aux      (barrier continuations: member count in this record)
//!   [2..4)   tid      u16
//!   [4..8)   arg      u32 (variable / lock / peer thread / barrier count)
//!   [8..12)  reserved u32 (barrier continuations: second member)
//! ```
//!
//! A `BarrierRelease` spans multiple records: one [`opcode::BARRIER`] record
//! whose `arg` is the member count, then ⌈count/2⌉ [`opcode::BARRIER_CONT`]
//! records each carrying one or two member tids (in `arg` and the reserved
//! word, `aux` = how many).
//!
//! Thread ids in simple records must fit in 16 bits — far above the
//! 8-bit tid limit of packed epochs, so any analyzable trace encodes.
//! [`FtbWriter::write_op`] rejects wider tids rather than truncating.

use crate::batch::{opcode, EventBlock};
use crate::event::{LockId, ObjId, Op, VarId};
use crate::serial::TraceFormatError;
use crate::trace::{validate, Trace};
use ft_clock::Tid;
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

/// The four magic bytes opening every `.ftb` stream.
pub const FTB_MAGIC: [u8; 4] = *b"FTB\0";
/// Current format version, bumped on any incompatible layout change.
pub const FTB_VERSION: u32 = 1;
/// Size of the fixed header in bytes.
pub const FTB_HEADER_BYTES: usize = 32;
/// Size of one record in bytes.
pub const FTB_RECORD_BYTES: usize = 12;

const FLAG_VAR_OBJECTS: u32 = 1;
const N_RECORDS_STREAM: u64 = u64::MAX;

/// Errors from encoding or decoding the `.ftb` binary format.
#[derive(Debug)]
pub enum FtbError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The bytes do not form a valid `.ftb` stream (bad magic, unsupported
    /// version, truncated record, unknown opcode, …), or an event cannot be
    /// represented (thread id beyond 16 bits).
    Format(String),
}

impl fmt::Display for FtbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtbError::Io(e) => write!(f, "ftb i/o error: {e}"),
            FtbError::Format(msg) => write!(f, "malformed ftb data: {msg}"),
        }
    }
}

impl Error for FtbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FtbError::Io(e) => Some(e),
            FtbError::Format(_) => None,
        }
    }
}

impl From<io::Error> for FtbError {
    fn from(e: io::Error) -> Self {
        FtbError::Io(e)
    }
}

fn format_err(msg: impl Into<String>) -> FtbError {
    FtbError::Format(msg.into())
}

/// The decoded fixed header of a `.ftb` stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FtbHeader {
    /// Format version of the stream.
    pub version: u32,
    /// Declared thread-id space (informational; events are authoritative).
    pub n_threads: u32,
    /// Declared variable-id space.
    pub n_vars: u32,
    /// Declared lock-id space.
    pub n_locks: u32,
    /// Record count, or `None` for open-ended streams (read to EOF).
    pub n_records: Option<u64>,
}

/// Streaming encoder: writes the header up front, then one call per event.
///
/// Construction writes an open-ended header (`n_records` unknown), which is
/// what an online recorder wants: events can be appended until the process
/// ends and the file is still readable. [`Trace::to_ftb`] patches the exact
/// record count in afterwards since it knows the whole trace.
pub struct FtbWriter<W: Write> {
    out: W,
    records: u64,
}

fn record(op: u8, aux: u8, tid: u32, arg: u32, reserved: u32) -> Result<[u8; 12], FtbError> {
    let tid: u16 = tid
        .try_into()
        .map_err(|_| format_err(format!("thread id {tid} exceeds the 16-bit record field")))?;
    let mut rec = [0u8; FTB_RECORD_BYTES];
    rec[0] = op;
    rec[1] = aux;
    rec[2..4].copy_from_slice(&tid.to_le_bytes());
    rec[4..8].copy_from_slice(&arg.to_le_bytes());
    rec[8..12].copy_from_slice(&reserved.to_le_bytes());
    Ok(rec)
}

impl<W: Write> FtbWriter<W> {
    /// Starts a stream with the given id-space metadata and no per-variable
    /// object table.
    pub fn new(out: W, n_threads: u32, n_vars: u32, n_locks: u32) -> io::Result<Self> {
        Self::with_var_objects(out, n_threads, n_vars, n_locks, &[])
    }

    /// Starts a stream that also records the `var_objects` table used by the
    /// coarse-grain analysis. The table length must be `n_vars`.
    pub fn with_var_objects(
        mut out: W,
        n_threads: u32,
        n_vars: u32,
        n_locks: u32,
        var_objects: &[ObjId],
    ) -> io::Result<Self> {
        assert!(
            var_objects.is_empty() || var_objects.len() == n_vars as usize,
            "var_objects table must cover exactly n_vars variables"
        );
        let mut header = [0u8; FTB_HEADER_BYTES];
        header[0..4].copy_from_slice(&FTB_MAGIC);
        header[4..8].copy_from_slice(&FTB_VERSION.to_le_bytes());
        header[8..12].copy_from_slice(&n_threads.to_le_bytes());
        header[12..16].copy_from_slice(&n_vars.to_le_bytes());
        header[16..20].copy_from_slice(&n_locks.to_le_bytes());
        let flags: u32 = if var_objects.is_empty() {
            0
        } else {
            FLAG_VAR_OBJECTS
        };
        header[20..24].copy_from_slice(&flags.to_le_bytes());
        header[24..32].copy_from_slice(&N_RECORDS_STREAM.to_le_bytes());
        out.write_all(&header)?;
        for obj in var_objects {
            out.write_all(&obj.as_u32().to_le_bytes())?;
        }
        Ok(FtbWriter { out, records: 0 })
    }

    /// Appends one event to the stream.
    pub fn write_op(&mut self, op: &Op) -> Result<(), FtbError> {
        let rec = match *op {
            Op::Read(t, x) => record(opcode::READ, 0, t.as_u32(), x.as_u32(), 0)?,
            Op::Write(t, x) => record(opcode::WRITE, 0, t.as_u32(), x.as_u32(), 0)?,
            Op::Acquire(t, m) => record(opcode::ACQUIRE, 0, t.as_u32(), m.as_u32(), 0)?,
            Op::Release(t, m) => record(opcode::RELEASE, 0, t.as_u32(), m.as_u32(), 0)?,
            Op::Fork(t, u) => record(opcode::FORK, 0, t.as_u32(), u.as_u32(), 0)?,
            Op::Join(t, u) => record(opcode::JOIN, 0, t.as_u32(), u.as_u32(), 0)?,
            Op::VolatileRead(t, x) => record(opcode::VOLATILE_READ, 0, t.as_u32(), x.as_u32(), 0)?,
            Op::VolatileWrite(t, x) => {
                record(opcode::VOLATILE_WRITE, 0, t.as_u32(), x.as_u32(), 0)?
            }
            Op::Wait(t, m) => record(opcode::WAIT, 0, t.as_u32(), m.as_u32(), 0)?,
            Op::Notify(t, m) => record(opcode::NOTIFY, 0, t.as_u32(), m.as_u32(), 0)?,
            Op::AtomicBegin(t) => record(opcode::ATOMIC_BEGIN, 0, t.as_u32(), 0, 0)?,
            Op::AtomicEnd(t) => record(opcode::ATOMIC_END, 0, t.as_u32(), 0, 0)?,
            Op::BarrierRelease(ref members) => {
                let head = record(opcode::BARRIER, 0, 0, members.len() as u32, 0)?;
                self.out.write_all(&head)?;
                self.records += 1;
                for pair in members.chunks(2) {
                    let second = pair.get(1).map_or(0, |t| t.as_u32());
                    let cont = record(
                        opcode::BARRIER_CONT,
                        pair.len() as u8,
                        0,
                        pair[0].as_u32(),
                        second,
                    )?;
                    self.out.write_all(&cont)?;
                    self.records += 1;
                }
                return Ok(());
            }
        };
        self.out.write_all(&rec)?;
        self.records += 1;
        Ok(())
    }

    /// Number of 12-byte records written so far (barriers span several).
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// One decoded record group (a barrier and its continuations count as one).
enum Rec {
    Simple { kind: u8, tid: u32, arg: u32 },
    Barrier(Vec<Tid>),
}

/// Streaming decoder over any [`Read`] source.
///
/// Iterate it for `Result<Op, FtbError>` items, or feed a batch consumer
/// with [`FtbReader::read_block`] to skip [`Op`] materialization entirely.
pub struct FtbReader<R: Read> {
    input: R,
    header: FtbHeader,
    var_objects: Vec<ObjId>,
    /// Records left per the header, or `None` for read-to-EOF streams.
    remaining: Option<u64>,
}

impl<R: Read> FtbReader<R> {
    /// Reads and validates the header (and the var_objects table when
    /// present), leaving the reader positioned at the first record.
    pub fn new(mut input: R) -> Result<Self, FtbError> {
        let mut header = [0u8; FTB_HEADER_BYTES];
        input.read_exact(&mut header).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => format_err("truncated header"),
            _ => FtbError::Io(e),
        })?;
        if header[0..4] != FTB_MAGIC {
            return Err(format_err("bad magic (not a .ftb stream)"));
        }
        let word = |at: usize| u32::from_le_bytes(header[at..at + 4].try_into().expect("4 bytes"));
        let version = word(4);
        if version != FTB_VERSION {
            return Err(format_err(format!(
                "unsupported version {version} (this build reads {FTB_VERSION})"
            )));
        }
        let (n_threads, n_vars, n_locks, flags) = (word(8), word(12), word(16), word(20));
        if flags & !FLAG_VAR_OBJECTS != 0 {
            return Err(format_err(format!("unknown flag bits {flags:#x}")));
        }
        let n_records = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
        let mut var_objects = Vec::new();
        if flags & FLAG_VAR_OBJECTS != 0 {
            let mut buf = [0u8; 4];
            for _ in 0..n_vars {
                input
                    .read_exact(&mut buf)
                    .map_err(|_| format_err("truncated var_objects table"))?;
                var_objects.push(ObjId::new(u32::from_le_bytes(buf)));
            }
        }
        Ok(FtbReader {
            input,
            header: FtbHeader {
                version,
                n_threads,
                n_vars,
                n_locks,
                n_records: (n_records != N_RECORDS_STREAM).then_some(n_records),
            },
            var_objects,
            remaining: (n_records != N_RECORDS_STREAM).then_some(n_records),
        })
    }

    /// The decoded stream header.
    pub fn header(&self) -> &FtbHeader {
        &self.header
    }

    /// The per-variable owning-object table, empty when the stream carries
    /// none.
    pub fn var_objects(&self) -> &[ObjId] {
        &self.var_objects
    }

    /// Reads the next raw record; `Ok(None)` at a clean end of stream.
    fn read_record(&mut self) -> Result<Option<[u8; FTB_RECORD_BYTES]>, FtbError> {
        if self.remaining == Some(0) {
            return Ok(None);
        }
        let mut rec = [0u8; FTB_RECORD_BYTES];
        let mut filled = 0;
        while filled < FTB_RECORD_BYTES {
            match self.input.read(&mut rec[filled..]) {
                Ok(0) => {
                    return if filled == 0 && self.remaining.is_none() {
                        Ok(None) // clean EOF on an open-ended stream
                    } else {
                        Err(format_err("truncated record"))
                    };
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FtbError::Io(e)),
            }
        }
        if let Some(left) = self.remaining.as_mut() {
            *left -= 1;
        }
        Ok(Some(rec))
    }

    /// Decodes the next event group (a barrier consumes its continuations).
    fn next_rec(&mut self) -> Result<Option<Rec>, FtbError> {
        let Some(rec) = self.read_record()? else {
            return Ok(None);
        };
        let kind = rec[0];
        let tid = u16::from_le_bytes(rec[2..4].try_into().expect("2 bytes")) as u32;
        let arg = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
        match kind {
            opcode::BARRIER => {
                let count = arg as usize;
                let mut members = Vec::with_capacity(count);
                while members.len() < count {
                    let Some(cont) = self.read_record()? else {
                        return Err(format_err("barrier truncated mid-member-list"));
                    };
                    if cont[0] != opcode::BARRIER_CONT {
                        return Err(format_err(format!(
                            "expected barrier continuation, found opcode {}",
                            cont[0]
                        )));
                    }
                    let in_rec = cont[1] as usize;
                    if in_rec == 0 || in_rec > 2 || members.len() + in_rec > count {
                        return Err(format_err("barrier continuation member count out of range"));
                    }
                    members.push(Tid::new(u32::from_le_bytes(
                        cont[4..8].try_into().expect("4 bytes"),
                    )));
                    if in_rec == 2 {
                        members.push(Tid::new(u32::from_le_bytes(
                            cont[8..12].try_into().expect("4 bytes"),
                        )));
                    }
                }
                Ok(Some(Rec::Barrier(members)))
            }
            opcode::BARRIER_CONT => Err(format_err("orphan barrier continuation record")),
            k if k < opcode::BARRIER => Ok(Some(Rec::Simple { kind, tid, arg })),
            k => Err(format_err(format!("unknown opcode {k}"))),
        }
    }

    /// Decodes the next event, or `Ok(None)` at end of stream.
    pub fn next_op(&mut self) -> Result<Option<Op>, FtbError> {
        Ok(self.next_rec()?.map(|rec| match rec {
            Rec::Barrier(members) => Op::BarrierRelease(members),
            Rec::Simple { kind, tid, arg } => {
                let t = Tid::new(tid);
                match kind {
                    opcode::READ => Op::Read(t, VarId::new(arg)),
                    opcode::WRITE => Op::Write(t, VarId::new(arg)),
                    opcode::ACQUIRE => Op::Acquire(t, LockId::new(arg)),
                    opcode::RELEASE => Op::Release(t, LockId::new(arg)),
                    opcode::FORK => Op::Fork(t, Tid::new(arg)),
                    opcode::JOIN => Op::Join(t, Tid::new(arg)),
                    opcode::VOLATILE_READ => Op::VolatileRead(t, VarId::new(arg)),
                    opcode::VOLATILE_WRITE => Op::VolatileWrite(t, VarId::new(arg)),
                    opcode::WAIT => Op::Wait(t, LockId::new(arg)),
                    opcode::NOTIFY => Op::Notify(t, LockId::new(arg)),
                    opcode::ATOMIC_BEGIN => Op::AtomicBegin(t),
                    _ => Op::AtomicEnd(t),
                }
            }
        }))
    }

    /// Decodes up to `max_events` events straight into `block`'s SoA lanes
    /// (no [`Op`] values are built except barrier member lists). Returns the
    /// number of events decoded; zero means end of stream.
    pub fn read_block(
        &mut self,
        block: &mut EventBlock,
        max_events: usize,
    ) -> Result<usize, FtbError> {
        block.clear();
        while block.len() < max_events {
            match self.next_rec()? {
                None => break,
                Some(Rec::Simple { kind, tid, arg }) => block.push_simple(kind, tid, arg),
                Some(Rec::Barrier(members)) => block.push_barrier(members),
            }
        }
        Ok(block.len())
    }
}

impl<R: Read> fmt::Debug for FtbReader<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FtbReader")
            .field("header", &self.header)
            .field("remaining", &self.remaining)
            .finish_non_exhaustive()
    }
}

impl<R: Read> Iterator for FtbReader<R> {
    type Item = Result<Op, FtbError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_op().transpose()
    }
}

impl Trace {
    /// Serializes this trace to `.ftb` bytes, with an exact record count in
    /// the header and the var_objects table included.
    ///
    /// # Errors
    ///
    /// Fails only if an event cannot be represented (a thread id beyond the
    /// record's 16-bit field).
    pub fn to_ftb(&self) -> Result<Vec<u8>, FtbError> {
        let objects: Vec<ObjId> = (0..self.n_vars())
            .map(|x| self.object_of(VarId::new(x)))
            .collect();
        let mut w = FtbWriter::with_var_objects(
            Vec::new(),
            self.n_threads(),
            self.n_vars(),
            self.n_locks(),
            &objects,
        )
        .expect("writing to memory cannot fail");
        for op in self.events() {
            w.write_op(op)?;
        }
        let records = w.records_written();
        let mut bytes = w.finish().expect("flushing memory cannot fail");
        bytes[24..32].copy_from_slice(&records.to_le_bytes());
        Ok(bytes)
    }

    /// Deserializes and re-validates a trace from `.ftb` bytes, exactly
    /// mirroring [`Trace::from_json`]'s feasibility and metadata handling.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFormatError::Binary`] for malformed bytes and
    /// [`TraceFormatError::Infeasible`] if the decoded events violate the
    /// §2.1 feasibility constraints.
    pub fn from_ftb(bytes: &[u8]) -> Result<Trace, TraceFormatError> {
        let mut reader = FtbReader::new(bytes)?;
        let mut events = Vec::new();
        while let Some(op) = reader.next_op()? {
            events.push(op);
        }
        let mut trace = validate(&events)?;
        trace.n_threads = trace.n_threads.max(reader.header().n_threads);
        let var_objects = reader.var_objects();
        if !var_objects.is_empty() {
            let mut objects = var_objects.to_vec();
            let n = trace.n_vars as usize;
            objects.truncate(n);
            for i in objects.len()..n {
                objects.push(ObjId::new(i as u32));
            }
            trace.var_objects = objects;
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    fn sample_trace() -> Trace {
        let (t0, t1) = (Tid::new(0), Tid::new(1));
        let (x, m) = (VarId::new(0), LockId::new(0));
        let events = vec![
            Op::Fork(t0, t1),
            Op::AtomicBegin(t0),
            Op::Write(t0, x),
            Op::Read(t0, x),
            Op::AtomicEnd(t0),
            Op::VolatileWrite(t0, x),
            Op::VolatileRead(t1, x),
            Op::Acquire(t1, m),
            Op::Notify(t1, m),
            Op::Wait(t1, m),
            Op::Release(t1, m),
            Op::BarrierRelease(vec![t0, t1]),
            Op::Join(t0, t1),
        ];
        validate(&events).unwrap()
    }

    #[test]
    fn every_variant_round_trips() {
        let trace = sample_trace();
        let bytes = trace.to_ftb().unwrap();
        let back = Trace::from_ftb(&bytes).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn encoding_is_bit_stable() {
        // Re-encoding a decoded trace must reproduce the bytes exactly —
        // the property replay tooling relies on.
        let trace = sample_trace();
        let bytes = trace.to_ftb().unwrap();
        let again = Trace::from_ftb(&bytes).unwrap().to_ftb().unwrap();
        assert_eq!(bytes, again);
    }

    #[test]
    fn header_fields_and_record_count_are_exact() {
        let trace = sample_trace();
        let bytes = trace.to_ftb().unwrap();
        let reader = FtbReader::new(bytes.as_slice()).unwrap();
        let h = reader.header();
        assert_eq!(h.version, FTB_VERSION);
        assert_eq!(h.n_threads, trace.n_threads());
        assert_eq!(h.n_vars, trace.n_vars());
        assert_eq!(h.n_locks, trace.n_locks());
        // 12 simple events + 1 barrier header + 1 continuation (2 members).
        assert_eq!(h.n_records, Some(14));
        assert_eq!(
            bytes.len(),
            FTB_HEADER_BYTES + trace.n_vars() as usize * 4 + 14 * FTB_RECORD_BYTES
        );
    }

    #[test]
    fn open_ended_stream_reads_to_eof() {
        let trace = sample_trace();
        let mut w = FtbWriter::new(Vec::new(), trace.n_threads(), trace.n_vars(), 1).unwrap();
        for op in trace.events() {
            w.write_op(op).unwrap();
        }
        let bytes = w.finish().unwrap();
        let reader = FtbReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.header().n_records, None);
        let ops: Result<Vec<Op>, FtbError> = reader.collect();
        assert_eq!(ops.unwrap(), trace.events());
    }

    #[test]
    fn read_block_decodes_in_batches() {
        let trace = sample_trace();
        let bytes = trace.to_ftb().unwrap();
        let mut reader = FtbReader::new(bytes.as_slice()).unwrap();
        let mut block = EventBlock::with_capacity(4);
        let mut decoded = Vec::new();
        loop {
            let n = reader.read_block(&mut block, 4).unwrap();
            if n == 0 {
                break;
            }
            assert!(n <= 4);
            decoded.extend(block.ops());
        }
        assert_eq!(decoded, trace.events());
    }

    #[test]
    fn var_objects_survive_the_round_trip() {
        let mut b = TraceBuilder::with_threads(1);
        b.write(Tid::new(0), VarId::new(2)).unwrap();
        b.set_var_object(VarId::new(0), ObjId::new(9));
        b.set_var_object(VarId::new(2), ObjId::new(9));
        let trace = b.finish();
        let back = Trace::from_ftb(&trace.to_ftb().unwrap()).unwrap();
        assert_eq!(back.object_of(VarId::new(0)), ObjId::new(9));
        assert_eq!(back.object_of(VarId::new(2)), ObjId::new(9));
        assert_eq!(back.object_of(VarId::new(1)), ObjId::new(1));
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let trace = sample_trace();
        let good = trace.to_ftb().unwrap();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            FtbReader::new(bad.as_slice()).unwrap_err(),
            FtbError::Format(_)
        ));

        // Future version.
        let mut bad = good.clone();
        bad[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(FtbReader::new(bad.as_slice()).is_err());

        // Truncated mid-record.
        let bad = &good[..good.len() - 5];
        let reader = FtbReader::new(bad).unwrap();
        assert!(reader.collect::<Result<Vec<Op>, _>>().is_err());

        // Unknown opcode.
        let mut bad = good.clone();
        let first_record = FTB_HEADER_BYTES + trace.n_vars() as usize * 4;
        bad[first_record] = 200;
        let reader = FtbReader::new(bad.as_slice()).unwrap();
        assert!(reader.collect::<Result<Vec<Op>, _>>().is_err());
    }

    #[test]
    fn oversized_tid_is_an_encode_error() {
        let mut w = FtbWriter::new(Vec::new(), 1, 1, 0).unwrap();
        let err = w
            .write_op(&Op::Write(Tid::new(70_000), VarId::new(0)))
            .unwrap_err();
        assert!(matches!(err, FtbError::Format(_)));
    }

    #[test]
    fn infeasible_ftb_is_rejected_like_json() {
        let (t0, m) = (Tid::new(0), LockId::new(0));
        let mut w = FtbWriter::new(Vec::new(), 1, 0, 1).unwrap();
        w.write_op(&Op::Acquire(t0, m)).unwrap();
        w.write_op(&Op::Acquire(t0, m)).unwrap(); // double acquire
        let bytes = w.finish().unwrap();
        assert!(matches!(
            Trace::from_ftb(&bytes).unwrap_err(),
            TraceFormatError::Infeasible(_)
        ));
    }

    #[test]
    fn wide_barrier_spans_continuations() {
        let tids: Vec<Tid> = (0..7).map(Tid::new).collect();
        let mut events = Vec::new();
        for u in 1..7 {
            events.push(Op::Fork(Tid::new(0), Tid::new(u)));
        }
        events.push(Op::BarrierRelease(tids));
        let trace = validate(&events).unwrap();
        let back = Trace::from_ftb(&trace.to_ftb().unwrap()).unwrap();
        assert_eq!(back.events(), trace.events());
    }
}
