//! Push-style incremental decoding of `.ftb` byte streams.
//!
//! [`FtbReader`](crate::FtbReader) pulls from a blocking [`std::io::Read`],
//! which fits files and pipes. A network daemon receives the same stream as
//! *framed chunks* that arrive whenever the peer flushes — record
//! boundaries land anywhere, including mid-header and mid-barrier — and the
//! receiving thread must never block on "the rest of the record". The
//! [`FtbDecoder`] inverts control for that caller: bytes are pushed in as
//! they arrive, decoded events are drained out, and `Ok(None)` simply means
//! *need more bytes*, never end-of-stream.
//!
//! ```
//! use ft_trace::{FtbDecoder, TraceBuilder, VarId};
//! use ft_clock::Tid;
//!
//! let mut b = TraceBuilder::with_threads(2);
//! b.write(Tid::new(0), VarId::new(0)).unwrap();
//! b.write(Tid::new(1), VarId::new(0)).unwrap();
//! let bytes = b.finish().to_ftb().unwrap();
//!
//! let mut dec = FtbDecoder::new();
//! let mut ops = Vec::new();
//! for chunk in bytes.chunks(5) {
//!     dec.push(chunk);
//!     while let Some(op) = dec.next_op().unwrap() {
//!         ops.push(op);
//!     }
//! }
//! assert_eq!(ops.len(), 2);
//! assert!(dec.finish().is_ok());
//! ```

use crate::batch::opcode;
use crate::event::{LockId, ObjId, Op, VarId};
use crate::ftb::{FtbError, FtbHeader, FTB_HEADER_BYTES, FTB_MAGIC, FTB_RECORD_BYTES, FTB_VERSION};
use ft_clock::Tid;

const FLAG_VAR_OBJECTS: u32 = 1;
const N_RECORDS_STREAM: u64 = u64::MAX;

fn format_err(msg: impl Into<String>) -> FtbError {
    FtbError::Format(msg.into())
}

/// Where the decoder is in the stream grammar.
#[derive(Debug)]
enum Phase {
    /// Waiting for the 32-byte fixed header.
    Header,
    /// Waiting for the `n_vars × 4` byte var_objects table.
    VarObjects { n_vars: usize },
    /// Steady state: 12-byte records.
    Records,
}

/// Incremental push-parser for `.ftb` bytes ([`FtbReader`](crate::FtbReader)
/// is the pull-style sibling; the two accept exactly the same streams).
///
/// Feed arbitrary chunks with [`FtbDecoder::push`], drain with
/// [`FtbDecoder::next_op`], and call [`FtbDecoder::finish`] once the peer
/// signals end-of-upload to catch truncated trailing records.
#[derive(Debug)]
pub struct FtbDecoder {
    /// Undecoded bytes; `pos` marks how far decoding has consumed. The
    /// consumed prefix is compacted away whenever it outgrows the tail so
    /// buffered memory stays proportional to one burst, not the stream.
    buf: Vec<u8>,
    pos: usize,
    phase: Phase,
    header: Option<FtbHeader>,
    var_objects: Vec<ObjId>,
    /// Barrier members accumulated so far and the count still expected.
    barrier: Option<(Vec<Tid>, usize)>,
    /// Records left per the header, `None` for open-ended streams.
    remaining: Option<u64>,
    events: u64,
}

impl Default for FtbDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FtbDecoder {
    /// A decoder positioned before the stream header.
    pub fn new() -> Self {
        FtbDecoder {
            buf: Vec::new(),
            pos: 0,
            phase: Phase::Header,
            header: None,
            var_objects: Vec::new(),
            barrier: None,
            remaining: None,
            events: 0,
        }
    }

    /// Appends newly arrived bytes. Cheap; decoding happens in
    /// [`FtbDecoder::next_op`].
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact once the consumed prefix dominates, so a long-lived
        // session does not accrete the whole upload.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The stream header, once its 32 bytes (and var_objects table) have
    /// been pushed and decoded.
    pub fn header(&self) -> Option<&FtbHeader> {
        self.header.as_ref()
    }

    /// The per-variable owning-object table (empty when the stream carries
    /// none or the table has not fully arrived yet).
    pub fn var_objects(&self) -> &[ObjId] {
        &self.var_objects
    }

    /// Events decoded so far (a barrier with its continuations counts one).
    pub fn events_decoded(&self) -> u64 {
        self.events
    }

    /// Bytes pushed but not yet consumed by decoding.
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&[u8]> {
        if self.buf.len() - self.pos < n {
            return None;
        }
        let at = self.pos;
        self.pos += n;
        Some(&self.buf[at..at + n])
    }

    /// Decodes the next event, `Ok(None)` when more bytes are needed.
    ///
    /// A count-carrying stream that has delivered all its records keeps
    /// returning `Ok(None)`; trailing garbage after the declared count is
    /// reported by [`FtbDecoder::finish`].
    pub fn next_op(&mut self) -> Result<Option<Op>, FtbError> {
        loop {
            match self.phase {
                Phase::Header => {
                    let Some(bytes) = self.take(FTB_HEADER_BYTES) else {
                        return Ok(None);
                    };
                    let header: [u8; FTB_HEADER_BYTES] =
                        bytes.try_into().expect("exact header length");
                    if header[0..4] != FTB_MAGIC {
                        return Err(format_err("bad magic (not a .ftb stream)"));
                    }
                    let word =
                        |at: usize| u32::from_le_bytes(header[at..at + 4].try_into().expect("4"));
                    let version = word(4);
                    if version != FTB_VERSION {
                        return Err(format_err(format!(
                            "unsupported version {version} (this build reads {FTB_VERSION})"
                        )));
                    }
                    let (n_threads, n_vars, n_locks, flags) =
                        (word(8), word(12), word(16), word(20));
                    if flags & !FLAG_VAR_OBJECTS != 0 {
                        return Err(format_err(format!("unknown flag bits {flags:#x}")));
                    }
                    let n_records = u64::from_le_bytes(header[24..32].try_into().expect("8"));
                    let n_records = (n_records != N_RECORDS_STREAM).then_some(n_records);
                    self.header = Some(FtbHeader {
                        version,
                        n_threads,
                        n_vars,
                        n_locks,
                        n_records,
                    });
                    self.remaining = n_records;
                    self.phase = if flags & FLAG_VAR_OBJECTS != 0 {
                        Phase::VarObjects {
                            n_vars: n_vars as usize,
                        }
                    } else {
                        Phase::Records
                    };
                }
                Phase::VarObjects { n_vars } => {
                    let Some(bytes) = self.take(n_vars * 4) else {
                        return Ok(None);
                    };
                    self.var_objects = bytes
                        .chunks_exact(4)
                        .map(|c| ObjId::new(u32::from_le_bytes(c.try_into().expect("4"))))
                        .collect();
                    self.phase = Phase::Records;
                }
                Phase::Records => {
                    if self.remaining == Some(0) {
                        return Ok(None);
                    }
                    let Some(rec) = self.take(FTB_RECORD_BYTES) else {
                        return Ok(None);
                    };
                    let rec: [u8; FTB_RECORD_BYTES] = rec.try_into().expect("exact record");
                    if let Some(left) = self.remaining.as_mut() {
                        *left -= 1;
                    }
                    let kind = rec[0];
                    let tid = u16::from_le_bytes(rec[2..4].try_into().expect("2")) as u32;
                    let arg = u32::from_le_bytes(rec[4..8].try_into().expect("4"));

                    if let Some((members, expected)) = self.barrier.as_mut() {
                        if kind != opcode::BARRIER_CONT {
                            return Err(format_err(format!(
                                "expected barrier continuation, found opcode {kind}"
                            )));
                        }
                        let in_rec = rec[1] as usize;
                        if in_rec == 0 || in_rec > 2 || members.len() + in_rec > *expected {
                            return Err(format_err(
                                "barrier continuation member count out of range",
                            ));
                        }
                        members.push(Tid::new(arg));
                        if in_rec == 2 {
                            members.push(Tid::new(u32::from_le_bytes(
                                rec[8..12].try_into().expect("4"),
                            )));
                        }
                        if members.len() == *expected {
                            let (members, _) = self.barrier.take().expect("in-progress barrier");
                            self.events += 1;
                            return Ok(Some(Op::BarrierRelease(members)));
                        }
                        continue;
                    }

                    let t = Tid::new(tid);
                    let op = match kind {
                        opcode::READ => Op::Read(t, VarId::new(arg)),
                        opcode::WRITE => Op::Write(t, VarId::new(arg)),
                        opcode::ACQUIRE => Op::Acquire(t, LockId::new(arg)),
                        opcode::RELEASE => Op::Release(t, LockId::new(arg)),
                        opcode::FORK => Op::Fork(t, Tid::new(arg)),
                        opcode::JOIN => Op::Join(t, Tid::new(arg)),
                        opcode::VOLATILE_READ => Op::VolatileRead(t, VarId::new(arg)),
                        opcode::VOLATILE_WRITE => Op::VolatileWrite(t, VarId::new(arg)),
                        opcode::WAIT => Op::Wait(t, LockId::new(arg)),
                        opcode::NOTIFY => Op::Notify(t, LockId::new(arg)),
                        opcode::ATOMIC_BEGIN => Op::AtomicBegin(t),
                        opcode::ATOMIC_END => Op::AtomicEnd(t),
                        opcode::BARRIER => {
                            let count = arg as usize;
                            if count == 0 {
                                self.events += 1;
                                return Ok(Some(Op::BarrierRelease(Vec::new())));
                            }
                            self.barrier = Some((Vec::with_capacity(count), count));
                            continue;
                        }
                        opcode::BARRIER_CONT => {
                            return Err(format_err("orphan barrier continuation record"));
                        }
                        k => return Err(format_err(format!("unknown opcode {k}"))),
                    };
                    self.events += 1;
                    return Ok(Some(op));
                }
            }
        }
    }

    /// Validates end-of-upload: every pushed byte must have been consumed by
    /// a complete event. Mid-header, mid-record, mid-barrier, or short of a
    /// declared record count is a truncation error; surplus bytes after a
    /// declared count are trailing garbage.
    pub fn finish(&self) -> Result<(), FtbError> {
        if matches!(self.phase, Phase::Header) && self.buf.len() == self.pos && self.events == 0 {
            return Err(format_err("empty upload (no .ftb header)"));
        }
        if self.buf.len() != self.pos {
            return Err(if self.remaining == Some(0) {
                format_err("trailing bytes after the declared record count")
            } else {
                format_err("truncated record")
            });
        }
        if self.barrier.is_some() {
            return Err(format_err("barrier truncated mid-member-list"));
        }
        match self.phase {
            Phase::Header | Phase::VarObjects { .. } => Err(format_err("truncated header")),
            Phase::Records => match self.remaining {
                Some(left) if left > 0 => Err(format_err(format!(
                    "stream ended {left} record(s) short of the declared count"
                ))),
                _ => Ok(()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftb::FtbWriter;
    use crate::gen::{self, GenConfig};
    use crate::trace::validate;

    fn sample_bytes() -> Vec<u8> {
        let tids: Vec<Tid> = (0..5).map(Tid::new).collect();
        let mut events = Vec::new();
        for u in 1..5 {
            events.push(Op::Fork(Tid::new(0), Tid::new(u)));
        }
        events.push(Op::Write(Tid::new(1), VarId::new(0)));
        events.push(Op::BarrierRelease(tids));
        events.push(Op::Read(Tid::new(2), VarId::new(0)));
        validate(&events).unwrap().to_ftb().unwrap()
    }

    fn drain(dec: &mut FtbDecoder) -> Vec<Op> {
        let mut ops = Vec::new();
        while let Some(op) = dec.next_op().unwrap() {
            ops.push(op);
        }
        ops
    }

    #[test]
    fn every_chunk_size_agrees_with_the_pull_reader() {
        let trace = gen::generate(&GenConfig::default().with_races(0.05), 11);
        let bytes = trace.to_ftb().unwrap();
        for chunk in [1, 3, 7, 12, 13, 64, 4096, bytes.len()] {
            let mut dec = FtbDecoder::new();
            let mut ops = Vec::new();
            for piece in bytes.chunks(chunk) {
                dec.push(piece);
                ops.extend(drain(&mut dec));
            }
            assert_eq!(ops, trace.events(), "chunk size {chunk}");
            dec.finish().unwrap();
            assert_eq!(dec.events_decoded(), trace.len() as u64);
            assert_eq!(dec.buffered_bytes(), 0);
        }
    }

    #[test]
    fn header_and_var_objects_surface_after_decode() {
        let bytes = sample_bytes();
        let mut dec = FtbDecoder::new();
        dec.push(&bytes[..16]);
        assert!(dec.next_op().unwrap().is_none());
        assert!(dec.header().is_none());
        dec.push(&bytes[16..]);
        let ops = drain(&mut dec);
        assert_eq!(ops.len(), 7);
        let h = dec.header().unwrap();
        assert_eq!(h.n_threads, 5);
        assert_eq!(dec.var_objects().len(), h.n_vars as usize);
        dec.finish().unwrap();
    }

    #[test]
    fn barriers_split_across_pushes_reassemble() {
        let bytes = sample_bytes();
        for split in 0..bytes.len() {
            let mut dec = FtbDecoder::new();
            dec.push(&bytes[..split]);
            let mut ops = drain(&mut dec);
            dec.push(&bytes[split..]);
            ops.extend(drain(&mut dec));
            assert_eq!(ops.len(), 7, "split at {split}");
            dec.finish().unwrap();
        }
    }

    #[test]
    fn truncations_fail_finish_not_next_op() {
        let bytes = sample_bytes();
        for cut in [1, 16, 33, bytes.len() - 5, bytes.len() - 1] {
            let mut dec = FtbDecoder::new();
            dec.push(&bytes[..cut]);
            while let Ok(Some(_)) = dec.next_op() {}
            assert!(dec.finish().is_err(), "cut at {cut} should not finish");
        }
    }

    #[test]
    fn corrupt_bytes_error_eagerly() {
        let mut bad = sample_bytes();
        bad[0] = b'X';
        let mut dec = FtbDecoder::new();
        dec.push(&bad);
        assert!(matches!(dec.next_op(), Err(FtbError::Format(_))));

        let mut dec = FtbDecoder::new();
        let good = sample_bytes();
        let first_record = {
            let n_vars = u32::from_le_bytes(good[12..16].try_into().unwrap()) as usize;
            FTB_HEADER_BYTES + n_vars * 4
        };
        let mut bad = good;
        bad[first_record] = 200;
        dec.push(&bad);
        assert!(dec.next_op().is_err());
    }

    #[test]
    fn open_ended_stream_finishes_cleanly_at_any_record_boundary() {
        let trace = gen::generate(&GenConfig::default(), 3);
        let mut w = FtbWriter::new(Vec::new(), trace.n_threads(), trace.n_vars(), 1).unwrap();
        for op in trace.events() {
            w.write_op(op).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut dec = FtbDecoder::new();
        dec.push(&bytes);
        let ops = drain(&mut dec);
        assert_eq!(ops, trace.events());
        dec.finish().unwrap();
    }

    #[test]
    fn declared_count_stops_decoding_and_flags_trailing_garbage() {
        let mut bytes = sample_bytes();
        bytes.extend_from_slice(&[0u8; 12]);
        let mut dec = FtbDecoder::new();
        dec.push(&bytes);
        let ops = drain(&mut dec);
        assert_eq!(ops.len(), 7, "declared count must bound decoding");
        assert!(dec.finish().is_err(), "trailing bytes must fail finish");
    }

    #[test]
    fn empty_upload_is_an_error() {
        let dec = FtbDecoder::new();
        assert!(dec.finish().is_err());
    }
}
