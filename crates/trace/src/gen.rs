//! Seeded random generation of feasible traces.
//!
//! Two generators with different purposes:
//!
//! * [`generate`] — *structured* workloads: every variable is assigned one
//!   of the sharing disciplines the paper identifies (§1: "the vast majority
//!   of data in multithreaded programs is either thread local, lock
//!   protected, or read shared"), plus an optional fraction of deliberately
//!   racy variables. Mix parameters control the read/write/sync ratios so
//!   benchmarks can dial in the Figure 2 operation mix.
//! * [`chaotic`] — *unstructured* traces: random operations filtered through
//!   the feasibility checker. These explore odd corners (forks of forks,
//!   lock hand-offs, barrier/volatile interleavings) and are the workhorse
//!   of the precision property tests.
//!
//! Both are deterministic functions of their seed.

use crate::builder::TraceBuilder;
use crate::event::{LockId, ObjId, Op, VarId};
use crate::rng::Prng;
use crate::trace::Trace;
use ft_clock::Tid;

/// The sharing discipline assigned to a generated variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Discipline {
    /// Accessed by a single thread only.
    ThreadLocal(Tid),
    /// Every access holds the given lock.
    LockProtected(LockId),
    /// Written once during single-threaded initialization, then only read.
    ReadShared,
    /// Free-for-all: unsynchronized accesses (certainly racy under
    /// contention).
    Racy,
}

/// Parameters for the structured generator.
///
/// The discipline weights need not sum to 1; they are normalized. The
/// default configuration approximates the paper's aggregate operation mix
/// (~82% reads, ~15% writes, ~3% synchronization) with no races.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Worker thread count (≥ 1). With [`GenConfig::fork_join`], thread 0 is
    /// the main thread that forks and joins workers `1..threads`.
    pub threads: u32,
    /// Number of shared variables.
    pub vars: u32,
    /// Number of locks available for lock-protected variables.
    pub locks: u32,
    /// Approximate number of events to generate (the actual count varies
    /// slightly because critical sections emit acquire/release pairs).
    pub ops: usize,
    /// Wrap the workload in fork-all/join-all by thread 0. Required for
    /// race-free read-shared data (the initializing writes must
    /// happen-before the readers).
    pub fork_join: bool,
    /// Weight of thread-local variables.
    pub w_thread_local: f64,
    /// Weight of lock-protected variables.
    pub w_lock_protected: f64,
    /// Weight of read-shared variables.
    pub w_read_shared: f64,
    /// Weight of racy variables (0 for race-free traces).
    pub w_racy: f64,
    /// Average reads per write (controls the read/write ratio).
    pub reads_per_write: u32,
    /// Accesses bundled inside one acquire/release critical section.
    pub accesses_per_cs: u32,
    /// Per-step probability of a global barrier across all workers.
    pub p_barrier: f64,
    /// Per-step probability of a volatile write/read pair hand-off.
    pub p_volatile: f64,
    /// Group variables into objects of this size (for coarse-grain studies).
    pub vars_per_object: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            threads: 4,
            vars: 64,
            locks: 8,
            ops: 4_000,
            fork_join: true,
            w_thread_local: 0.55,
            w_lock_protected: 0.30,
            w_read_shared: 0.15,
            w_racy: 0.0,
            reads_per_write: 6,
            accesses_per_cs: 4,
            p_barrier: 0.0005,
            p_volatile: 0.001,
            vars_per_object: 1,
        }
    }
}

impl GenConfig {
    /// A race-free configuration (zero racy weight). This is the default.
    pub fn race_free() -> Self {
        GenConfig::default()
    }

    /// A configuration where a fraction of variables are racy.
    pub fn with_races(mut self, w_racy: f64) -> Self {
        self.w_racy = w_racy;
        self
    }
}

/// Generates a structured, feasible trace. Deterministic in `(cfg, seed)`.
///
/// # Panics
///
/// Panics if `cfg.threads == 0` or `cfg.vars == 0`.
pub fn generate(cfg: &GenConfig, seed: u64) -> Trace {
    assert!(cfg.threads >= 1, "need at least one thread");
    assert!(cfg.vars >= 1, "need at least one variable");
    let mut rng = Prng::seed_from_u64(seed);
    // With fork/join the workers must be *forked* (not pre-existing), so
    // only the main thread is pre-registered in that mode.
    let mut b = if cfg.fork_join && cfg.threads > 1 {
        TraceBuilder::with_threads(1)
    } else {
        TraceBuilder::with_threads(cfg.threads)
    };

    // Assign disciplines.
    let total_w = cfg.w_thread_local + cfg.w_lock_protected + cfg.w_read_shared + cfg.w_racy;
    assert!(total_w > 0.0, "discipline weights must not all be zero");
    let workers: Vec<Tid> = if cfg.fork_join && cfg.threads > 1 {
        (1..cfg.threads).map(Tid::new).collect()
    } else {
        (0..cfg.threads).map(Tid::new).collect()
    };
    let disciplines: Vec<Discipline> = (0..cfg.vars)
        .map(|_| {
            let roll = rng.next_f64() * total_w;
            if roll < cfg.w_thread_local {
                Discipline::ThreadLocal(*rng.choose(&workers).expect("nonempty workers"))
            } else if roll < cfg.w_thread_local + cfg.w_lock_protected {
                let m = if cfg.locks == 0 {
                    0
                } else {
                    rng.gen_range(0..cfg.locks)
                };
                Discipline::LockProtected(LockId::new(m))
            } else if roll < cfg.w_thread_local + cfg.w_lock_protected + cfg.w_read_shared {
                Discipline::ReadShared
            } else {
                Discipline::Racy
            }
        })
        .collect();

    // Group vars into objects.
    if cfg.vars_per_object > 1 {
        for v in 0..cfg.vars {
            b.set_var_object(VarId::new(v), ObjId::new(v / cfg.vars_per_object));
        }
    }

    let main = Tid::new(0);

    // Initialization phase: main writes read-shared (and racy) variables so
    // read-shared data has a well-defined initializing write.
    if cfg.fork_join {
        for (v, d) in disciplines.iter().enumerate() {
            if matches!(d, Discipline::ReadShared) {
                b.write(main, VarId::new(v as u32))
                    .expect("feasible init write");
            }
        }
        for &w in &workers {
            b.fork(main, w).expect("feasible fork");
        }
    }

    // Volatile hand-off flags live beyond the data vars.
    let volatile_var = VarId::new(cfg.vars);

    // Per-variable, per-discipline access emission.
    let mut emitted = b.len();
    let target = cfg.ops;
    while emitted < target {
        let &t = rng.choose(&workers).expect("nonempty workers");
        if cfg.p_barrier > 0.0 && workers.len() > 1 && rng.gen_bool(cfg.p_barrier) {
            b.barrier_release(workers.clone())
                .expect("feasible barrier");
            emitted = b.len();
            continue;
        }
        if cfg.p_volatile > 0.0 && rng.gen_bool(cfg.p_volatile) {
            // A volatile publish/subscribe pair between two random workers.
            let &u = rng.choose(&workers).expect("nonempty workers");
            b.volatile_write(t, volatile_var)
                .expect("feasible volatile write");
            b.volatile_read(u, volatile_var)
                .expect("feasible volatile read");
            emitted = b.len();
            continue;
        }

        // Pick a variable this thread is allowed to touch.
        let v = rng.gen_range(0..cfg.vars);
        let x = VarId::new(v);
        let is_write =
            |rng: &mut Prng, cfg: &GenConfig| rng.gen_range(0..=cfg.reads_per_write) == 0;
        match disciplines[v as usize] {
            Discipline::ThreadLocal(owner) => {
                let burst = rng.gen_range(1..=cfg.accesses_per_cs.max(1));
                for _ in 0..burst {
                    if is_write(&mut rng, cfg) {
                        b.write(owner, x).expect("feasible thread-local write");
                    } else {
                        b.read(owner, x).expect("feasible thread-local read");
                    }
                }
            }
            Discipline::LockProtected(m) => {
                let burst = rng.gen_range(1..=cfg.accesses_per_cs.max(1));
                b.release_after_acquire(t, m, |b| {
                    for _ in 0..burst {
                        if rng.gen_range(0..=cfg.reads_per_write) == 0 {
                            b.write(t, x)?;
                        } else {
                            b.read(t, x)?;
                        }
                    }
                    Ok(())
                })
                .expect("feasible critical section");
            }
            Discipline::ReadShared => {
                if cfg.fork_join {
                    b.read(t, x).expect("feasible shared read");
                } else {
                    // Without fork/join ordering an initializing write would
                    // race; emit reads only.
                    b.read(t, x).expect("feasible shared read");
                }
            }
            Discipline::Racy => {
                if is_write(&mut rng, cfg) {
                    b.write(t, x).expect("feasible racy write");
                } else {
                    b.read(t, x).expect("feasible racy read");
                }
            }
        }
        emitted = b.len();
    }

    if cfg.fork_join {
        for &w in &workers {
            b.join(main, w).expect("feasible join");
        }
        // Main reads a few variables after joining (all ordered).
        for v in 0..cfg.vars.min(4) {
            b.read(main, VarId::new(v))
                .expect("feasible post-join read");
        }
    }

    b.finish()
}

/// Generates an unstructured feasible trace by proposing random operations
/// and keeping those the feasibility checker accepts.
///
/// Useful for property tests: covers fork/join/lock/barrier/volatile corner
/// cases that the structured generator never produces. Deterministic in its
/// arguments.
pub fn chaotic(threads: u32, vars: u32, locks: u32, ops: usize, seed: u64) -> Trace {
    let threads = threads.max(1);
    let vars = vars.max(1);
    let locks = locks.max(1);
    let mut rng = Prng::seed_from_u64(seed);
    // Half the thread budget pre-exists; the rest must be forked, so the
    // generator exercises real fork/join structure.
    let preexisting = (threads / 2).max(1);
    let mut b = TraceBuilder::with_threads(preexisting);
    let mut started: Vec<Tid> = (0..preexisting).map(Tid::new).collect();
    let mut unstarted: Vec<Tid> = (preexisting..threads).map(Tid::new).collect();
    let mut joinable: Vec<Tid> = Vec::new();
    let mut attempts = 0usize;
    let max_attempts = ops.saturating_mul(4).max(16);
    while b.len() < ops && attempts < max_attempts {
        attempts += 1;
        let t = *rng.choose(&started).expect("at least one started thread");
        let accepted = match rng.gen_range(0..12u32) {
            0..=4 => b.read(t, VarId::new(rng.gen_range(0..vars))).is_ok(),
            5..=6 => b.write(t, VarId::new(rng.gen_range(0..vars))).is_ok(),
            7 => b.acquire(t, LockId::new(rng.gen_range(0..locks))).is_ok(),
            8 => b.release(t, LockId::new(rng.gen_range(0..locks))).is_ok(),
            9 => {
                if let Some(&u) = unstarted.last() {
                    if b.fork(t, u).is_ok() {
                        unstarted.pop();
                        started.push(u);
                        if u != t {
                            joinable.push(u);
                        }
                        true
                    } else {
                        false
                    }
                } else {
                    false
                }
            }
            10 => {
                if let Some(pos) = (0..joinable.len())
                    .find(|&i| joinable[i] != t && b.join(t, joinable[i]).is_ok())
                {
                    let u = joinable.swap_remove(pos);
                    started.retain(|&s| s != u);
                    true
                } else {
                    false
                }
            }
            _ => match rng.gen_range(0..4u32) {
                0 => b
                    .volatile_read(t, VarId::new(rng.gen_range(0..vars)))
                    .is_ok(),
                1 => b
                    .volatile_write(t, VarId::new(rng.gen_range(0..vars)))
                    .is_ok(),
                2 => b
                    .push(Op::Wait(t, LockId::new(rng.gen_range(0..locks))))
                    .is_ok(),
                _ => {
                    let k = rng.gen_range(1..=started.len());
                    let mut set = started.clone();
                    set.truncate(k);
                    b.barrier_release(set).is_ok()
                }
            },
        };
        let _ = accepted; // infeasible proposals are simply skipped
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hb::HbOracle;
    use crate::trace::validate;

    #[test]
    fn generate_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate(&cfg, 42);
        let b = generate(&cfg, 42);
        assert_eq!(a, b);
        let c = generate(&cfg, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_traces_are_feasible() {
        let cfg = GenConfig {
            ops: 800,
            ..GenConfig::default()
        };
        for seed in 0..4 {
            let trace = generate(&cfg, seed);
            assert!(validate(trace.events()).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn race_free_config_produces_race_free_traces() {
        let cfg = GenConfig {
            ops: 1_000,
            p_barrier: 0.005,
            p_volatile: 0.01,
            ..GenConfig::race_free()
        };
        for seed in 0..6 {
            let trace = generate(&cfg, seed);
            let report = HbOracle::analyze(&trace);
            assert!(
                report.is_race_free(),
                "seed {seed}: {}",
                report.races[0].describe()
            );
        }
    }

    #[test]
    fn racy_config_produces_races() {
        let cfg = GenConfig {
            ops: 1_500,
            ..GenConfig::default().with_races(0.3)
        };
        let mut any = false;
        for seed in 0..4 {
            let trace = generate(&cfg, seed);
            any |= !HbOracle::analyze(&trace).is_race_free();
        }
        assert!(any, "expected at least one racy trace across seeds");
    }

    #[test]
    fn op_mix_is_read_heavy() {
        let trace = generate(&GenConfig::default(), 7);
        let ratios = trace.op_mix().ratios();
        assert!(ratios.reads_pct > 60.0, "{ratios}");
        assert!(ratios.writes_pct > 5.0, "{ratios}");
        assert!(ratios.other_pct < 30.0, "{ratios}");
    }

    #[test]
    fn chaotic_traces_are_feasible_and_deterministic() {
        for seed in 0..8 {
            let t1 = chaotic(4, 6, 3, 300, seed);
            let t2 = chaotic(4, 6, 3, 300, seed);
            assert_eq!(t1, t2);
            assert!(validate(t1.events()).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn chaotic_covers_sync_ops() {
        // Across a few seeds we should see forks, joins, barriers, volatiles.
        let mut mix = crate::stats::OpMix::default();
        for seed in 0..10 {
            let t = chaotic(4, 6, 3, 400, seed);
            for op in t.events() {
                mix.count(op);
            }
        }
        assert!(mix.forks > 0);
        assert!(mix.joins > 0);
        assert!(mix.barriers > 0);
        assert!(mix.volatiles > 0);
        assert!(mix.waits > 0);
    }

    #[test]
    fn vars_per_object_groups_vars() {
        let cfg = GenConfig {
            vars: 8,
            vars_per_object: 4,
            ops: 100,
            ..GenConfig::default()
        };
        let t = generate(&cfg, 1);
        assert_eq!(t.object_of(VarId::new(0)), t.object_of(VarId::new(3)));
        assert_ne!(t.object_of(VarId::new(0)), t.object_of(VarId::new(4)));
    }
}
