//! A reference happens-before analysis (the testing oracle).
//!
//! [`HbOracle`] computes a full vector-clock timestamp for *every* memory
//! access and then exhaustively compares all conflicting pairs. It is the
//! executable form of the §2.1 definition of a race condition — "two
//! concurrent conflicting accesses" — and serves as the ground truth that
//! Theorem 1 (precision of FastTrack) is property-tested against.
//!
//! It is intentionally simple and unoptimized; do not use it as a detector.

use crate::event::{AccessKind, Op, VarId};
use crate::trace::Trace;
use ft_clock::{Tid, VectorClock};
use std::collections::BTreeMap;

/// One memory access, with enough of its timestamp retained to decide
/// ordering against later accesses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Access {
    /// Index of the event in the trace.
    pub event_index: usize,
    /// The accessing thread.
    pub tid: Tid,
    /// Read or write.
    pub kind: AccessKind,
    /// The accessing thread's full vector clock at the access.
    pub clock: VectorClock,
}

impl Access {
    /// Returns `true` if this access happens before `later` (which must
    /// occur later in the trace).
    ///
    /// Since per-thread clocks only increase, access `a` by thread `t`
    /// happens before a later `b` iff `b`'s clock has caught up with `t`'s
    /// component: `Cₐ(t) ≤ C_b(t)` (Lemma 3 of the paper).
    #[inline]
    pub fn happens_before(&self, later: &Access) -> bool {
        self.clock.get(self.tid) <= later.clock.get(self.tid)
    }
}

/// A pair of concurrent conflicting accesses to one variable — a race.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RacePair {
    /// The variable both accesses touch.
    pub var: VarId,
    /// The earlier access.
    pub first: Access,
    /// The later access, concurrent with `first`.
    pub second: Access,
}

impl RacePair {
    /// A short human-readable description, e.g. `"write-read race on x3"`.
    pub fn describe(&self) -> String {
        format!(
            "{}-{} race on {} between {} (event {}) and {} (event {})",
            self.first.kind,
            self.second.kind,
            self.var,
            self.first.tid,
            self.first.event_index,
            self.second.tid,
            self.second.event_index
        )
    }
}

/// The oracle's verdict on a trace.
#[derive(Clone, Debug, Default)]
pub struct OracleReport {
    /// Every pair of concurrent conflicting accesses, in order of the later
    /// access's position (then the earlier's).
    pub races: Vec<RacePair>,
}

impl OracleReport {
    /// `true` if the trace is race-free.
    pub fn is_race_free(&self) -> bool {
        self.races.is_empty()
    }

    /// The set of variables with at least one race.
    pub fn race_vars(&self) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self.races.iter().map(|r| r.var).collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// For each racy variable, the race whose *later* access occurs earliest
    /// in the trace — the "first race on each variable" that FastTrack
    /// guarantees to detect (§3, footnote 3).
    pub fn first_race_per_var(&self) -> BTreeMap<VarId, &RacePair> {
        let mut map: BTreeMap<VarId, &RacePair> = BTreeMap::new();
        for race in &self.races {
            map.entry(race.var)
                .and_modify(|best| {
                    if race.second.event_index < best.second.event_index {
                        *best = race;
                    }
                })
                .or_insert(race);
        }
        map
    }
}

/// The reference happens-before analysis.
///
/// # Example
///
/// ```
/// use ft_trace::{HbOracle, TraceBuilder, VarId};
/// use ft_clock::Tid;
///
/// let mut b = TraceBuilder::with_threads(2);
/// b.write(Tid::new(0), VarId::new(0))?;
/// b.write(Tid::new(1), VarId::new(0))?; // unsynchronized: a race
/// let report = HbOracle::analyze(&b.finish());
/// assert_eq!(report.races.len(), 1);
/// # Ok::<(), ft_trace::FeasibilityError>(())
/// ```
#[derive(Debug)]
pub struct HbOracle;

impl HbOracle {
    /// Runs the oracle over `trace`, returning every racy pair.
    pub fn analyze(trace: &Trace) -> OracleReport {
        Self::analyze_events(trace.events(), trace.n_threads())
    }

    /// Runs the oracle over a raw event slice (must be feasible).
    pub fn analyze_events(events: &[Op], n_threads: u32) -> OracleReport {
        let mut clocks: Vec<VectorClock> = (0..n_threads.max(1))
            .map(|t| {
                let mut c = VectorClock::new();
                c.inc(Tid::new(t)); // σ₀ = (λt. incₜ(⊥ᵥ), …)
                c
            })
            .collect();
        let mut lock_clocks: BTreeMap<u32, VectorClock> = BTreeMap::new();
        let mut volatile_clocks: BTreeMap<u32, VectorClock> = BTreeMap::new();
        let mut accesses: BTreeMap<VarId, Vec<Access>> = BTreeMap::new();
        let mut races = Vec::new();

        let clock_of = |clocks: &mut Vec<VectorClock>, t: Tid| {
            if t.as_usize() >= clocks.len() {
                for i in clocks.len()..=t.as_usize() {
                    let mut c = VectorClock::new();
                    c.inc(Tid::new(i as u32));
                    clocks.push(c);
                }
            }
            t.as_usize()
        };

        for (index, op) in events.iter().enumerate() {
            match op {
                Op::Read(t, x) | Op::Write(t, x) => {
                    let kind = if matches!(op, Op::Read(..)) {
                        AccessKind::Read
                    } else {
                        AccessKind::Write
                    };
                    let ti = clock_of(&mut clocks, *t);
                    let access = Access {
                        event_index: index,
                        tid: *t,
                        kind,
                        clock: clocks[ti].clone(),
                    };
                    let prior = accesses.entry(*x).or_default();
                    for earlier in prior.iter() {
                        if earlier.kind.conflicts_with(access.kind)
                            && !earlier.happens_before(&access)
                        {
                            races.push(RacePair {
                                var: *x,
                                first: earlier.clone(),
                                second: access.clone(),
                            });
                        }
                    }
                    prior.push(access);
                }
                Op::Acquire(t, m) => {
                    let ti = clock_of(&mut clocks, *t);
                    if let Some(lm) = lock_clocks.get(&m.as_u32()) {
                        clocks[ti].join(lm);
                    }
                }
                Op::Release(t, m) => {
                    let ti = clock_of(&mut clocks, *t);
                    lock_clocks.insert(m.as_u32(), clocks[ti].clone());
                    clocks[ti].inc(*t);
                }
                Op::Wait(t, m) => {
                    // rel(t,m); acq(t,m) back-to-back (§4).
                    let ti = clock_of(&mut clocks, *t);
                    lock_clocks.insert(m.as_u32(), clocks[ti].clone());
                    clocks[ti].inc(*t);
                    let lm = lock_clocks.get(&m.as_u32()).cloned().unwrap_or_default();
                    clocks[ti].join(&lm);
                }
                Op::Notify(..) | Op::AtomicBegin(_) | Op::AtomicEnd(_) => {}
                Op::Fork(t, u) => {
                    let ti = clock_of(&mut clocks, *t);
                    let ui = clock_of(&mut clocks, *u);
                    let ct = clocks[ti].clone();
                    clocks[ui].join(&ct);
                    clocks[ti].inc(*t);
                }
                Op::Join(t, u) => {
                    let ti = clock_of(&mut clocks, *t);
                    let ui = clock_of(&mut clocks, *u);
                    let cu = clocks[ui].clone();
                    clocks[ti].join(&cu);
                    clocks[ui].inc(*u);
                }
                Op::VolatileRead(t, x) => {
                    let ti = clock_of(&mut clocks, *t);
                    if let Some(lv) = volatile_clocks.get(&x.as_u32()) {
                        clocks[ti].join(lv);
                    }
                }
                Op::VolatileWrite(t, x) => {
                    let ti = clock_of(&mut clocks, *t);
                    let entry = volatile_clocks.entry(x.as_u32()).or_default();
                    entry.join(&clocks[ti]);
                    clocks[ti].inc(*t);
                }
                Op::BarrierRelease(ts) => {
                    let mut joined = VectorClock::new();
                    for t in ts {
                        let ti = clock_of(&mut clocks, *t);
                        joined.join(&clocks[ti]);
                    }
                    for t in ts {
                        let ti = clock_of(&mut clocks, *t);
                        clocks[ti].assign(&joined);
                        clocks[ti].inc(*t);
                    }
                }
            }
        }

        OracleReport { races }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::event::LockId;

    const T0: Tid = Tid::new(0);
    const T1: Tid = Tid::new(1);
    const T2: Tid = Tid::new(2);
    const X: VarId = VarId::new(0);
    const M: LockId = LockId::new(0);

    fn analyze(
        build: impl FnOnce(&mut TraceBuilder) -> Result<(), crate::FeasibilityError>,
    ) -> OracleReport {
        let mut b = TraceBuilder::with_threads(3);
        build(&mut b).unwrap();
        HbOracle::analyze(&b.finish())
    }

    #[test]
    fn unsynchronized_write_write_is_a_race() {
        let r = analyze(|b| {
            b.write(T0, X)?;
            b.write(T1, X)
        });
        assert_eq!(r.races.len(), 1);
        assert_eq!(r.races[0].first.tid, T0);
        assert_eq!(r.races[0].second.tid, T1);
    }

    #[test]
    fn read_read_is_not_a_race() {
        let r = analyze(|b| {
            b.read(T0, X)?;
            b.read(T1, X)
        });
        assert!(r.is_race_free());
    }

    #[test]
    fn lock_discipline_orders_accesses() {
        let r = analyze(|b| {
            b.release_after_acquire(T0, M, |b| b.write(T0, X))?;
            b.release_after_acquire(T1, M, |b| b.write(T1, X))
        });
        assert!(r.is_race_free());
    }

    #[test]
    fn lock_on_only_one_side_does_not_order() {
        let r = analyze(|b| {
            b.release_after_acquire(T0, M, |b| b.write(T0, X))?;
            b.write(T1, X)
        });
        assert_eq!(r.races.len(), 1);
    }

    #[test]
    fn fork_orders_parent_before_child() {
        let mut b = TraceBuilder::new();
        b.write(T0, X).unwrap();
        b.fork(T0, T1).unwrap();
        b.write(T1, X).unwrap();
        let r = HbOracle::analyze(&b.finish());
        assert!(r.is_race_free());
    }

    #[test]
    fn join_orders_child_before_parent() {
        let mut b = TraceBuilder::new();
        b.fork(T0, T1).unwrap();
        b.write(T1, X).unwrap();
        b.join(T0, T1).unwrap();
        b.write(T0, X).unwrap();
        let r = HbOracle::analyze(&b.finish());
        assert!(r.is_race_free());
    }

    #[test]
    fn sibling_threads_race_without_sync() {
        let mut b = TraceBuilder::new();
        b.fork(T0, T1).unwrap();
        b.fork(T0, T2).unwrap();
        b.write(T1, X).unwrap();
        b.write(T2, X).unwrap();
        let r = HbOracle::analyze(&b.finish());
        assert_eq!(r.races.len(), 1);
    }

    #[test]
    fn volatile_write_read_creates_edge() {
        let v = VarId::new(5);
        let r = analyze(|b| {
            b.write(T0, X)?;
            b.volatile_write(T0, v)?;
            b.volatile_read(T1, v)?;
            b.read(T1, X)
        });
        assert!(r.is_race_free());
    }

    #[test]
    fn volatile_read_without_matching_write_gives_no_edge() {
        let v = VarId::new(5);
        let r = analyze(|b| {
            b.write(T0, X)?;
            b.volatile_read(T1, v)?;
            b.read(T1, X)
        });
        assert_eq!(r.races.len(), 1);
    }

    #[test]
    fn barrier_orders_phases() {
        let r = analyze(|b| {
            b.write(T0, X)?;
            b.barrier_release(vec![T0, T1])?;
            b.write(T1, X)
        });
        assert!(r.is_race_free());
    }

    #[test]
    fn post_barrier_steps_of_different_threads_are_concurrent() {
        let r = analyze(|b| {
            b.barrier_release(vec![T0, T1])?;
            b.write(T0, X)?;
            b.write(T1, X)
        });
        assert_eq!(r.races.len(), 1);
    }

    #[test]
    fn read_write_race_detected_against_any_prior_read() {
        // Two ordered reads then a concurrent write: both reads race with it.
        let r = analyze(|b| {
            b.release_after_acquire(T0, M, |b| b.read(T0, X))?;
            b.release_after_acquire(T1, M, |b| b.read(T1, X))?;
            b.write(T2, X)
        });
        assert_eq!(r.races.len(), 2);
        let vars = r.race_vars();
        assert_eq!(vars, vec![X]);
    }

    #[test]
    fn first_race_per_var_picks_earliest_later_access() {
        let r = analyze(|b| {
            b.write(T0, X)?;
            b.write(T1, X)?; // race #1 (second at event 1)
            b.write(T2, X) // races with both earlier writes
        });
        assert_eq!(r.races.len(), 3);
        let first = r.first_race_per_var();
        assert_eq!(first[&X].second.event_index, 1);
    }

    #[test]
    fn figure_2_trace_is_race_free() {
        // The §2.2 example: wr(0,x); rel(0,m); acq(1,m); wr(1,x).
        let r = analyze(|b| {
            b.acquire(T0, M)?;
            b.write(T0, X)?;
            b.release(T0, M)?;
            b.acquire(T1, M)?;
            b.write(T1, X)?;
            b.release(T1, M)
        });
        assert!(r.is_race_free());
    }

    #[test]
    fn describe_mentions_threads_and_var() {
        let r = analyze(|b| {
            b.write(T0, X)?;
            b.read(T1, X)
        });
        let d = r.races[0].describe();
        assert!(d.contains("write-read race"), "{d}");
        assert!(d.contains("x0"), "{d}");
    }
}
