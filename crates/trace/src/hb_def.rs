//! The *definitional* happens-before relation: a direct transitive closure
//! of §2.1's definition, independent of vector clocks.
//!
//! [`HbOracle`](crate::HbOracle) computes happens-before the way the
//! detectors do — with vector clocks — which makes it an unsuitable judge
//! of whether the vector-clock *semantics* are right. This module instead
//! materializes the relation exactly as the paper defines it: the smallest
//! transitively-closed relation containing, for `a` before `b` in the
//! trace,
//!
//! * **program order** — `a` and `b` by the same thread;
//! * **locking** — `a` and `b` acquire or release the same lock;
//! * **fork–join** — one of them is `fork(t, u)`/`join(t, u)` and the other
//!   is by thread `u`;
//!
//! plus the §4 extensions (a volatile write happens before every later
//! volatile read of the same variable; a barrier release separates the
//! pre- and post-barrier operations of its thread set).
//!
//! The closure costs O(events²) bits of memory and O(events² · edges)
//! time — only suitable for small traces. Its sole job is the property
//! test asserting `definitional_race_vars == HbOracle::race_vars` on
//! thousands of generated traces, which pins the fast oracle (and through
//! it every detector) to the paper's definition.

use crate::event::{AccessKind, Op, VarId};
use crate::trace::Trace;
use std::collections::HashMap;

/// A dense bitset-based reachability matrix over trace events.
struct Reachability {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Reachability {
    fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        Reachability {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    #[inline]
    fn set(&mut self, from: usize, to: usize) {
        self.bits[from * self.words_per_row + to / 64] |= 1 << (to % 64);
    }

    #[inline]
    fn get(&self, from: usize, to: usize) -> bool {
        self.bits[from * self.words_per_row + to / 64] & (1 << (to % 64)) != 0
    }

    /// `row(from) |= row(via)` — absorb everything reachable from `via`.
    fn absorb(&mut self, from: usize, via: usize) {
        let (f, v) = (from * self.words_per_row, via * self.words_per_row);
        for w in 0..self.words_per_row {
            let bits = self.bits[v + w];
            self.bits[f + w] |= bits;
        }
    }

    /// Closes the relation given edges sorted so every edge goes from an
    /// earlier to a later event: process targets in reverse trace order so
    /// each row is final when absorbed.
    fn close(&mut self, edges: &[(usize, usize)]) {
        // Group incoming edges by source in decreasing source order.
        let mut by_source: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for &(from, to) in edges {
            debug_assert!(from < to, "edges must follow trace order");
            by_source[from].push(to);
        }
        for from in (0..self.n).rev() {
            for to in std::mem::take(&mut by_source[from]) {
                self.set(from, to);
                self.absorb(from, to);
            }
        }
    }
}

/// Computes, straight from the definition, the set of variables with two
/// concurrent conflicting accesses.
///
/// Intended for small traces (the closure is quadratic in the number of
/// events); see the module docs.
pub fn definitional_race_vars(trace: &Trace) -> Vec<VarId> {
    let events = trace.events();
    let n = events.len();
    let mut edges: Vec<(usize, usize)> = Vec::new();

    // Program order: consecutive events of each thread. Barrier releases
    // belong to every thread in their set.
    let mut last_of_thread: HashMap<u32, usize> = HashMap::new();
    let thread_ids = |op: &Op| -> Vec<u32> {
        match op {
            Op::BarrierRelease(ts) => ts.iter().map(|t| t.as_u32()).collect(),
            other => other.tid().map(|t| vec![t.as_u32()]).unwrap_or_default(),
        }
    };
    for (i, op) in events.iter().enumerate() {
        for t in thread_ids(op) {
            if let Some(&prev) = last_of_thread.get(&t) {
                edges.push((prev, i));
            }
            last_of_thread.insert(t, i);
        }
    }

    // Locking: all acquire/release (and wait, which is both) operations on
    // the same lock are totally ordered; consecutive edges suffice under
    // transitive closure.
    let mut last_of_lock: HashMap<u32, usize> = HashMap::new();
    for (i, op) in events.iter().enumerate() {
        let lock = match op {
            Op::Acquire(_, m) | Op::Release(_, m) | Op::Wait(_, m) => Some(m.as_u32()),
            _ => None,
        };
        if let Some(m) = lock {
            if let Some(&prev) = last_of_lock.get(&m) {
                edges.push((prev, i));
            }
            last_of_lock.insert(m, i);
        }
    }

    // Fork–join: fork(t, u) precedes u's first event; u's last event
    // precedes join(t, u). Program-order edges above already connect the
    // fork/join events to the rest of t's timeline.
    let mut first_of_thread: HashMap<u32, usize> = HashMap::new();
    for (i, op) in events.iter().enumerate() {
        for t in thread_ids(op) {
            first_of_thread.entry(t).or_insert(i);
        }
    }
    for (i, op) in events.iter().enumerate() {
        match op {
            Op::Fork(_, u) => {
                // First event of u after the fork.
                if let Some(&first) = first_of_thread.get(&u.as_u32()) {
                    if first > i {
                        edges.push((i, first));
                    } else {
                        // u's "first event" map was filled by an earlier
                        // occurrence (possible only for re-used ids, which
                        // feasibility forbids); scan forward instead.
                        if let Some(next) = events[i + 1..]
                            .iter()
                            .position(|e| thread_ids(e).contains(&u.as_u32()))
                        {
                            edges.push((i, i + 1 + next));
                        }
                    }
                }
            }
            Op::Join(_, u) => {
                // Last event of u before the join.
                if let Some(prev) = events[..i]
                    .iter()
                    .rposition(|e| thread_ids(e).contains(&u.as_u32()))
                {
                    edges.push((prev, i));
                }
            }
            _ => {}
        }
    }

    // Volatiles (§4): a volatile write happens before every subsequent
    // volatile read of the same variable.
    let mut volatile_writes: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, op) in events.iter().enumerate() {
        match op {
            Op::VolatileWrite(_, v) => volatile_writes.entry(v.as_u32()).or_default().push(i),
            Op::VolatileRead(_, v) => {
                if let Some(writes) = volatile_writes.get(&v.as_u32()) {
                    for &w in writes {
                        edges.push((w, i));
                    }
                }
            }
            _ => {}
        }
    }

    let mut reach = Reachability::new(n);
    reach.close(&edges);

    // Race check: conflicting accesses with no path either way.
    let mut accesses: HashMap<u32, Vec<(usize, AccessKind)>> = HashMap::new();
    let mut racy: Vec<VarId> = Vec::new();
    for (i, op) in events.iter().enumerate() {
        if let Some((x, kind)) = op.access() {
            let prior = accesses.entry(x.as_u32()).or_default();
            if prior
                .iter()
                .any(|&(j, k)| k.conflicts_with(kind) && !reach.get(j, i))
            {
                racy.push(x);
            }
            prior.push((i, kind));
        }
    }
    racy.sort_unstable();
    racy.dedup();
    racy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::event::LockId;
    use ft_clock::Tid;

    const T0: Tid = Tid::new(0);
    const T1: Tid = Tid::new(1);
    const X: VarId = VarId::new(0);
    const M: LockId = LockId::new(0);

    fn vars(
        build: impl FnOnce(&mut TraceBuilder) -> Result<(), crate::FeasibilityError>,
    ) -> Vec<VarId> {
        let mut b = TraceBuilder::with_threads(2);
        build(&mut b).unwrap();
        definitional_race_vars(&b.finish())
    }

    #[test]
    fn unsynchronized_writes_race() {
        assert_eq!(
            vars(|b| {
                b.write(T0, X)?;
                b.write(T1, X)
            }),
            vec![X]
        );
    }

    #[test]
    fn lock_order_is_transitive_through_the_closure() {
        assert!(vars(|b| {
            b.release_after_acquire(T0, M, |b| b.write(T0, X))?;
            b.release_after_acquire(T1, M, |b| b.write(T1, X))
        })
        .is_empty());
    }

    #[test]
    fn fork_join_edges() {
        let mut b = TraceBuilder::new();
        b.write(T0, X).unwrap();
        b.fork(T0, T1).unwrap();
        b.write(T1, X).unwrap();
        b.join(T0, T1).unwrap();
        b.write(T0, X).unwrap();
        assert!(definitional_race_vars(&b.finish()).is_empty());
    }

    #[test]
    fn barrier_separates_phases() {
        let mut b = TraceBuilder::with_threads(2);
        b.write(T0, X).unwrap();
        b.barrier_release(vec![T0, T1]).unwrap();
        b.write(T1, X).unwrap();
        assert!(definitional_race_vars(&b.finish()).is_empty());
    }

    #[test]
    fn volatile_publication() {
        let v = VarId::new(3);
        assert!(vars(|b| {
            b.write(T0, X)?;
            b.volatile_write(T0, v)?;
            b.volatile_read(T1, v)?;
            b.write(T1, X)
        })
        .is_empty());
    }

    #[test]
    fn reachability_bitset_basics() {
        let mut r = Reachability::new(130);
        r.close(&[(0, 64), (64, 129)]);
        assert!(r.get(0, 64));
        assert!(r.get(0, 129), "transitive");
        assert!(!r.get(64, 0));
        assert!(!r.get(1, 129));
    }
}
