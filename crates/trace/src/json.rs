//! A minimal JSON parser for the `.ftrace` format.
//!
//! The build environment has no serde, so deserialization is a small
//! recursive-descent parser producing a [`JsonValue`] tree. Numbers are kept
//! as `f64`, which represents every id in a trace exactly (ids are `u32`).

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; exact for integers up to 2⁵³.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as key/value pairs in source order (duplicate keys kept).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u32`, if this is a non-negative integral number in
    /// range (the representation of every trace id).
    pub fn as_u32(&self) -> Option<u32> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&n) {
            Some(n as u32)
        } else {
            None
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.eat_literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair support for completeness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), JsonValue::Num(-125.0));
        assert_eq!(parse(r#""hi\n""#).unwrap(), JsonValue::Str("hi\n".into()));
        let v = parse(r#"{"a":[1,2,{"b":false}],"c":null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u32(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&JsonValue::Bool(false)));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            parse(r#""\u0041\u00e9""#).unwrap(),
            JsonValue::Str("Aé".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            JsonValue::Str("😀".into())
        );
        // Raw (unescaped) UTF-8 passes through.
        assert_eq!(parse(r#""😀é""#).unwrap(), JsonValue::Str("😀é".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{not json", "[1,", "\"open", "{\"a\":}", "1 2", "tru", ""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn as_u32_bounds() {
        assert_eq!(parse("4294967295").unwrap().as_u32(), Some(u32::MAX));
        assert_eq!(parse("4294967296").unwrap().as_u32(), None);
        assert_eq!(parse("-1").unwrap().as_u32(), None);
        assert_eq!(parse("1.5").unwrap().as_u32(), None);
    }
}
