//! Multithreaded execution traces and the happens-before ground truth.
//!
//! This crate implements the trace model of §2.1 of the FastTrack paper
//! (Figure 1) together with the machinery the rest of the repository is
//! built and tested on:
//!
//! * [`Op`]/[`Trace`] — the operations a thread can perform (reads, writes,
//!   lock acquires/releases, forks and joins) plus the §4 extensions
//!   (volatile accesses, wait/notify, barrier releases) and the
//!   atomic-block markers used by the downstream checkers of §5.2.
//! * [`TraceBuilder`] / [`validate`] — feasibility checking: traces must
//!   respect the §2.1 well-formedness constraints on locks, forks, and joins.
//! * [`HbOracle`] — a *reference* happens-before analysis that computes a
//!   full vector clock per event and exhaustively finds every pair of
//!   concurrent conflicting accesses. It is deliberately simple and slow; it
//!   is the ground truth the detectors (FastTrack, DJIT+, BasicVC, …) are
//!   property-tested against.
//! * [`gen`] — seeded random generators of feasible traces with tunable
//!   sharing patterns, used by property tests and benchmarks.
//!
//! # Example
//!
//! ```
//! use ft_trace::{HbOracle, LockId, TraceBuilder, VarId};
//! use ft_clock::Tid;
//!
//! let (t0, t1) = (Tid::new(0), Tid::new(1));
//! let (x, m) = (VarId::new(0), LockId::new(0));
//!
//! let mut b = TraceBuilder::with_threads(2);
//! b.write(t0, x)?;
//! b.release_after_acquire(t0, m, |_| Ok(()))?;
//! // t1 acquires the same lock, so its write is ordered after t0's.
//! b.acquire(t1, m)?;
//! b.write(t1, x)?;
//! b.release(t1, m)?;
//! let trace = b.finish();
//!
//! let report = HbOracle::analyze(&trace);
//! assert!(report.races.is_empty());
//! # Ok::<(), ft_trace::FeasibilityError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod builder;
mod event;
mod ftb;
mod ftb_push;
pub mod gen;
mod hb;
mod hb_def;
pub mod json;
pub mod rng;
mod serial;
mod stats;
mod trace;

pub use batch::{EventBlock, DEFAULT_BLOCK_EVENTS};
pub use builder::{FeasibilityError, TraceBuilder};
pub use event::{AccessKind, LockId, ObjId, Op, VarId};
pub use ftb::{
    FtbError, FtbHeader, FtbReader, FtbWriter, FTB_HEADER_BYTES, FTB_MAGIC, FTB_RECORD_BYTES,
    FTB_VERSION,
};
pub use ftb_push::FtbDecoder;
pub use hb::{Access, HbOracle, OracleReport, RacePair};
pub use hb_def::definitional_race_vars;
pub use rng::Prng;
pub use serial::TraceFormatError;
pub use stats::{OpMix, OpMixRatios};
pub use trace::{validate, Trace};

pub use ft_clock::Tid;
