//! A small deterministic PRNG for trace generation.
//!
//! xoshiro256** seeded via splitmix64, so the whole workspace generates
//! identical traces from a `u64` seed without external crates. Not
//! cryptographic — trace generation and scheduler shuffling only.

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct Prng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Prng {
    /// Expands a 64-bit seed into the full generator state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        Prng {
            s: [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ],
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform value from a range; see [`RangeSample`] for supported types.
    ///
    /// # Panics
    /// Panics if the range is empty, matching `rand`'s contract.
    pub fn gen_range<R: RangeSample>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniformly chosen element of the slice, or `None` when it's empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.bounded(slice.len() as u64) as usize;
            Some(&slice[i])
        }
    }

    /// Uniform integer in `[0, bound)` via the 128-bit multiply trick
    /// (Lemire); bias is < 2⁻⁶⁴ per draw, irrelevant for trace generation.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Ranges [`Prng::gen_range`] can sample from: half-open and inclusive
/// integer ranges over `u32`/`u64`/`usize`, plus half-open `f64` ranges.
pub trait RangeSample {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Prng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl RangeSample for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Prng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded(span) as $t
            }
        }

        impl RangeSample for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Prng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded(span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl RangeSample for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Prng) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::seed_from_u64(43);
        assert_ne!(Prng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(5..=5usize);
            assert_eq!(v, 5);
            let v = rng.gen_range(0..=3u64);
            assert!(v <= 3);
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_outputs_cover_all_values() {
        let mut rng = Prng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn choose_behaviour() {
        let mut rng = Prng::seed_from_u64(9);
        let empty: [u32; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let &v = rng.choose(&items).unwrap();
            seen[(v / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Prng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
