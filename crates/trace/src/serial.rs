//! Trace (de)serialization: the `.ftrace` JSON format.
//!
//! Traces serialize as plain JSON so they can be captured once (e.g. from
//! the online runtime) and replayed through any detector. Deserialization
//! re-validates feasibility — a hand-edited file cannot smuggle an
//! infeasible trace into the analyses.
//!
//! The wire format matches what a serde derive would produce (the format the
//! seed repository shipped with), so existing `.ftrace` files stay
//! readable: enums are externally tagged (`{"Read":[0,1]}`), id newtypes
//! are transparent numbers, and a trace is
//! `{"events":[...],"n_threads":N,"n_vars":N,"n_locks":N,"var_objects":[...]}`.

use crate::builder::FeasibilityError;
use crate::event::Op;
use crate::json::{self, JsonValue};
use crate::trace::{validate, Trace};
use ft_clock::Tid;
use ft_obs::JsonWriter;
use std::error::Error;
use std::fmt;

/// Errors from reading a serialized trace.
#[derive(Debug)]
pub enum TraceFormatError {
    /// The JSON was malformed or did not match the trace schema.
    Json(String),
    /// The binary `.ftb` bytes were malformed (see [`crate::FtbError`]).
    Binary(crate::FtbError),
    /// The events decoded but do not form a feasible trace.
    Infeasible(FeasibilityError),
}

impl fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFormatError::Json(e) => write!(f, "malformed trace file: {e}"),
            TraceFormatError::Binary(e) => write!(f, "malformed trace file: {e}"),
            TraceFormatError::Infeasible(e) => write!(f, "infeasible trace: {e}"),
        }
    }
}

impl Error for TraceFormatError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceFormatError::Json(_) => None,
            TraceFormatError::Binary(e) => Some(e),
            TraceFormatError::Infeasible(e) => Some(e),
        }
    }
}

impl From<crate::FtbError> for TraceFormatError {
    fn from(e: crate::FtbError) -> Self {
        TraceFormatError::Binary(e)
    }
}

impl From<json::JsonParseError> for TraceFormatError {
    fn from(e: json::JsonParseError) -> Self {
        TraceFormatError::Json(e.to_string())
    }
}

impl From<FeasibilityError> for TraceFormatError {
    fn from(e: FeasibilityError) -> Self {
        TraceFormatError::Infeasible(e)
    }
}

fn schema_err(msg: impl Into<String>) -> TraceFormatError {
    TraceFormatError::Json(msg.into())
}

/// Writes one op in the externally-tagged enum encoding.
fn write_op(w: &mut JsonWriter, op: &Op) {
    fn pair(w: &mut JsonWriter, tag: &str, a: u32, b: u32) {
        w.begin_object();
        w.key(tag);
        w.begin_array();
        w.u64(a as u64);
        w.u64(b as u64);
        w.end_array();
        w.end_object();
    }
    match op {
        Op::Read(t, x) => pair(w, "Read", t.as_u32(), x.as_u32()),
        Op::Write(t, x) => pair(w, "Write", t.as_u32(), x.as_u32()),
        Op::Acquire(t, m) => pair(w, "Acquire", t.as_u32(), m.as_u32()),
        Op::Release(t, m) => pair(w, "Release", t.as_u32(), m.as_u32()),
        Op::Fork(t, u) => pair(w, "Fork", t.as_u32(), u.as_u32()),
        Op::Join(t, u) => pair(w, "Join", t.as_u32(), u.as_u32()),
        Op::VolatileRead(t, x) => pair(w, "VolatileRead", t.as_u32(), x.as_u32()),
        Op::VolatileWrite(t, x) => pair(w, "VolatileWrite", t.as_u32(), x.as_u32()),
        Op::Wait(t, m) => pair(w, "Wait", t.as_u32(), m.as_u32()),
        Op::Notify(t, m) => pair(w, "Notify", t.as_u32(), m.as_u32()),
        Op::BarrierRelease(ts) => {
            w.begin_object();
            w.key("BarrierRelease");
            w.begin_array();
            for t in ts {
                w.u64(t.as_u32() as u64);
            }
            w.end_array();
            w.end_object();
        }
        Op::AtomicBegin(t) => {
            w.begin_object();
            w.field_u64("AtomicBegin", t.as_u32() as u64);
            w.end_object();
        }
        Op::AtomicEnd(t) => {
            w.begin_object();
            w.field_u64("AtomicEnd", t.as_u32() as u64);
            w.end_object();
        }
    }
}

fn u32_of(v: &JsonValue, what: &str) -> Result<u32, TraceFormatError> {
    v.as_u32()
        .ok_or_else(|| schema_err(format!("expected a u32 for {what}")))
}

fn id_pair(v: &JsonValue, tag: &str) -> Result<(u32, u32), TraceFormatError> {
    let arr = v
        .as_array()
        .filter(|a| a.len() == 2)
        .ok_or_else(|| schema_err(format!("{tag} expects a 2-element array")))?;
    Ok((u32_of(&arr[0], tag)?, u32_of(&arr[1], tag)?))
}

fn parse_op(v: &JsonValue) -> Result<Op, TraceFormatError> {
    use crate::event::{LockId, VarId};
    let JsonValue::Obj(pairs) = v else {
        return Err(schema_err("each event must be a single-key object"));
    };
    let [(tag, body)] = pairs.as_slice() else {
        return Err(schema_err("each event must be a single-key object"));
    };
    let op = match tag.as_str() {
        "Read" | "Write" | "VolatileRead" | "VolatileWrite" => {
            let (t, x) = id_pair(body, tag)?;
            let (t, x) = (Tid::new(t), VarId::new(x));
            match tag.as_str() {
                "Read" => Op::Read(t, x),
                "Write" => Op::Write(t, x),
                "VolatileRead" => Op::VolatileRead(t, x),
                _ => Op::VolatileWrite(t, x),
            }
        }
        "Acquire" | "Release" | "Wait" | "Notify" => {
            let (t, m) = id_pair(body, tag)?;
            let (t, m) = (Tid::new(t), LockId::new(m));
            match tag.as_str() {
                "Acquire" => Op::Acquire(t, m),
                "Release" => Op::Release(t, m),
                "Wait" => Op::Wait(t, m),
                _ => Op::Notify(t, m),
            }
        }
        "Fork" | "Join" => {
            let (t, u) = id_pair(body, tag)?;
            if tag == "Fork" {
                Op::Fork(Tid::new(t), Tid::new(u))
            } else {
                Op::Join(Tid::new(t), Tid::new(u))
            }
        }
        "BarrierRelease" => {
            let arr = body
                .as_array()
                .ok_or_else(|| schema_err("BarrierRelease expects an array of thread ids"))?;
            let ts = arr
                .iter()
                .map(|t| u32_of(t, "BarrierRelease").map(Tid::new))
                .collect::<Result<Vec<_>, _>>()?;
            Op::BarrierRelease(ts)
        }
        "AtomicBegin" => Op::AtomicBegin(Tid::new(u32_of(body, tag)?)),
        "AtomicEnd" => Op::AtomicEnd(Tid::new(u32_of(body, tag)?)),
        other => return Err(schema_err(format!("unknown event variant `{other}`"))),
    };
    Ok(op)
}

impl Trace {
    /// Serializes this trace to JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("events");
        w.begin_array();
        for op in self.events() {
            write_op(&mut w, op);
        }
        w.end_array();
        w.field_u64("n_threads", self.n_threads() as u64);
        w.field_u64("n_vars", self.n_vars() as u64);
        w.field_u64("n_locks", self.n_locks() as u64);
        w.key("var_objects");
        w.begin_array();
        for x in 0..self.n_vars() {
            w.u64(self.object_of(crate::VarId::new(x)).as_u32() as u64);
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Deserializes and re-validates a trace from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFormatError::Json`] for malformed input and
    /// [`TraceFormatError::Infeasible`] if the decoded events violate the
    /// §2.1 feasibility constraints.
    pub fn from_json(input: &str) -> Result<Trace, TraceFormatError> {
        let doc = json::parse(input)?;
        let events = doc
            .get("events")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| schema_err("missing `events` array"))?
            .iter()
            .map(parse_op)
            .collect::<Result<Vec<_>, _>>()?;
        // Optional metadata; absent fields default like serde's `#[serde(default)]`.
        let n_threads = match doc.get("n_threads") {
            Some(v) => u32_of(v, "n_threads")?,
            None => 0,
        };
        let var_objects = match doc.get("var_objects") {
            Some(v) => v
                .as_array()
                .ok_or_else(|| schema_err("`var_objects` must be an array"))?
                .iter()
                .map(|o| u32_of(o, "var_objects").map(crate::ObjId::new))
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };

        let mut trace = validate(&events)?;
        // Preserve declared metadata when it extends what the events imply.
        trace.n_threads = trace.n_threads.max(n_threads);
        if !var_objects.is_empty() {
            let mut objects = var_objects;
            let n = trace.n_vars as usize;
            objects.truncate(n);
            for i in objects.len()..n {
                objects.push(crate::ObjId::new(i as u32));
            }
            trace.var_objects = objects;
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::event::{LockId, VarId};
    use ft_clock::Tid;

    #[test]
    fn json_round_trip() {
        let mut b = TraceBuilder::with_threads(2);
        b.write(Tid::new(0), VarId::new(0)).unwrap();
        b.acquire(Tid::new(1), LockId::new(0)).unwrap();
        b.release(Tid::new(1), LockId::new(0)).unwrap();
        b.set_var_object(VarId::new(0), crate::ObjId::new(7));
        let trace = b.finish();

        let json = trace.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back.events(), trace.events());
        assert_eq!(back.n_threads(), trace.n_threads());
        assert_eq!(back.object_of(VarId::new(0)), crate::ObjId::new(7));
    }

    #[test]
    fn wire_format_is_stable() {
        // The serde-era encoding, byte for byte: externally tagged enums,
        // transparent ids. Existing .ftrace files depend on this.
        let mut b = TraceBuilder::with_threads(2);
        b.write(Tid::new(0), VarId::new(3)).unwrap();
        let trace = b.finish();
        assert_eq!(
            trace.to_json(),
            r#"{"events":[{"Write":[0,3]}],"n_threads":2,"n_vars":4,"n_locks":0,"var_objects":[0,1,2,3]}"#
        );
    }

    #[test]
    fn all_variants_round_trip() {
        let t0 = Tid::new(0);
        let t1 = Tid::new(1);
        let x = VarId::new(0);
        let m = LockId::new(0);
        let events = vec![
            Op::Fork(t0, t1),
            Op::AtomicBegin(t0),
            Op::Write(t0, x),
            Op::Read(t0, x),
            Op::AtomicEnd(t0),
            Op::VolatileWrite(t0, x),
            Op::VolatileRead(t1, x),
            Op::Acquire(t1, m),
            Op::Notify(t1, m),
            Op::Release(t1, m),
            Op::BarrierRelease(vec![t0, t1]),
            Op::Join(t0, t1),
        ];
        let trace = validate(&events).unwrap();
        let back = Trace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back.events(), trace.events());
    }

    #[test]
    fn malformed_json_is_reported() {
        let err = Trace::from_json("{not json").unwrap_err();
        assert!(matches!(err, TraceFormatError::Json(_)));
        assert!(err.to_string().contains("malformed"));
    }

    #[test]
    fn schema_violations_are_json_errors() {
        for bad in [
            r#"{"n_threads":1}"#,                           // missing events
            r#"{"events":[{"Read":[0]}]}"#,                 // arity
            r#"{"events":[{"Frobnicate":[0,1]}]}"#,         // unknown variant
            r#"{"events":[{"Read":[0,1],"Write":[0,1]}]}"#, // two tags
            r#"{"events":[{"Read":[0,-1]}]}"#,              // negative id
        ] {
            let err = Trace::from_json(bad).unwrap_err();
            assert!(matches!(err, TraceFormatError::Json(_)), "{bad}");
        }
    }

    #[test]
    fn infeasible_events_are_rejected() {
        // Hand-craft a JSON trace with a double acquire.
        let json = r#"{"events":[{"Acquire":[0,0]},{"Acquire":[0,0]}],"n_threads":1,"n_vars":0,"n_locks":1,"var_objects":[]}"#;
        let err = Trace::from_json(json).unwrap_err();
        assert!(matches!(err, TraceFormatError::Infeasible(_)));
    }
}
