//! Trace (de)serialization: the `.ftrace` JSON format.
//!
//! Traces serialize as plain JSON so they can be captured once (e.g. from
//! the online runtime) and replayed through any detector. Deserialization
//! re-validates feasibility — a hand-edited file cannot smuggle an
//! infeasible trace into the analyses.

use crate::builder::FeasibilityError;
use crate::event::Op;
use crate::trace::{validate, Trace};
use serde::Deserialize;
use std::error::Error;
use std::fmt;

/// Errors from reading a serialized trace.
#[derive(Debug)]
pub enum TraceFormatError {
    /// The JSON was malformed or did not match the trace schema.
    Json(serde_json::Error),
    /// The events decoded but do not form a feasible trace.
    Infeasible(FeasibilityError),
}

impl fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFormatError::Json(e) => write!(f, "malformed trace file: {e}"),
            TraceFormatError::Infeasible(e) => write!(f, "infeasible trace: {e}"),
        }
    }
}

impl Error for TraceFormatError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceFormatError::Json(e) => Some(e),
            TraceFormatError::Infeasible(e) => Some(e),
        }
    }
}

impl From<serde_json::Error> for TraceFormatError {
    fn from(e: serde_json::Error) -> Self {
        TraceFormatError::Json(e)
    }
}

impl From<FeasibilityError> for TraceFormatError {
    fn from(e: FeasibilityError) -> Self {
        TraceFormatError::Infeasible(e)
    }
}

impl Trace {
    /// Serializes this trace to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Deserializes and re-validates a trace from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFormatError::Json`] for malformed input and
    /// [`TraceFormatError::Infeasible`] if the decoded events violate the
    /// §2.1 feasibility constraints.
    pub fn from_json(json: &str) -> Result<Trace, TraceFormatError> {
        #[derive(Deserialize)]
        struct Raw {
            events: Vec<Op>,
            #[serde(default)]
            var_objects: Vec<crate::ObjId>,
            #[serde(default)]
            n_threads: u32,
        }
        let raw: Raw = serde_json::from_str(json)?;
        let mut trace = validate(&raw.events)?;
        // Preserve declared metadata when it extends what the events imply.
        trace.n_threads = trace.n_threads.max(raw.n_threads);
        if !raw.var_objects.is_empty() {
            let mut objects = raw.var_objects;
            let n = trace.n_vars as usize;
            objects.truncate(n);
            for i in objects.len()..n {
                objects.push(crate::ObjId::new(i as u32));
            }
            trace.var_objects = objects;
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::event::{LockId, VarId};
    use ft_clock::Tid;

    #[test]
    fn json_round_trip() {
        let mut b = TraceBuilder::with_threads(2);
        b.write(Tid::new(0), VarId::new(0)).unwrap();
        b.acquire(Tid::new(1), LockId::new(0)).unwrap();
        b.release(Tid::new(1), LockId::new(0)).unwrap();
        b.set_var_object(VarId::new(0), crate::ObjId::new(7));
        let trace = b.finish();

        let json = trace.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back.events(), trace.events());
        assert_eq!(back.n_threads(), trace.n_threads());
        assert_eq!(back.object_of(VarId::new(0)), crate::ObjId::new(7));
    }

    #[test]
    fn malformed_json_is_reported() {
        let err = Trace::from_json("{not json").unwrap_err();
        assert!(matches!(err, TraceFormatError::Json(_)));
        assert!(err.to_string().contains("malformed"));
    }

    #[test]
    fn infeasible_events_are_rejected() {
        // Hand-craft a JSON trace with a double acquire.
        let t = Tid::new(0);
        let m = LockId::new(0);
        let events = vec![Op::Acquire(t, m), Op::Acquire(t, m)];
        let json = format!(
            "{{\"events\":{},\"n_threads\":1,\"n_vars\":0,\"n_locks\":1,\"var_objects\":[]}}",
            serde_json::to_string(&events).unwrap()
        );
        let err = Trace::from_json(&json).unwrap_err();
        assert!(matches!(err, TraceFormatError::Infeasible(_)));
    }
}
