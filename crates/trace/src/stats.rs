//! Operation-mix statistics (the Figure 2 frequency columns).

use crate::event::Op;
use std::fmt;

/// Counts of each operation category in a trace.
///
/// §3 of the paper reports that "reads and writes to object fields and
/// arrays account for over 96% of monitored operations"; the Figure 2 margin
/// notes give 82.3% reads, 14.5% writes, 3.3% other. [`OpMix::ratios`]
/// computes the same breakdown for any trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpMix {
    /// Data reads.
    pub reads: u64,
    /// Data writes.
    pub writes: u64,
    /// Lock acquires (incl. the acquire half of waits).
    pub acquires: u64,
    /// Lock releases (incl. the release half of waits).
    pub releases: u64,
    /// Forks.
    pub forks: u64,
    /// Joins.
    pub joins: u64,
    /// Volatile reads and writes.
    pub volatiles: u64,
    /// Barrier releases.
    pub barriers: u64,
    /// Waits (counted once each; also contribute to acquires/releases).
    pub waits: u64,
    /// Notifies and atomic-block markers (no happens-before effect).
    pub markers: u64,
}

impl OpMix {
    /// Tallies the mix of an event sequence.
    pub fn of(events: &[Op]) -> OpMix {
        let mut mix = OpMix::default();
        for op in events {
            mix.count(op);
        }
        mix
    }

    /// Adds one operation to the tally.
    pub fn count(&mut self, op: &Op) {
        match op {
            Op::Read(..) => self.reads += 1,
            Op::Write(..) => self.writes += 1,
            Op::Acquire(..) => self.acquires += 1,
            Op::Release(..) => self.releases += 1,
            Op::Fork(..) => self.forks += 1,
            Op::Join(..) => self.joins += 1,
            Op::VolatileRead(..) | Op::VolatileWrite(..) => self.volatiles += 1,
            Op::BarrierRelease(..) => self.barriers += 1,
            Op::Wait(..) => {
                self.waits += 1;
                self.acquires += 1;
                self.releases += 1;
            }
            Op::Notify(..) | Op::AtomicBegin(_) | Op::AtomicEnd(_) => self.markers += 1,
        }
    }

    /// Total monitored operations (markers excluded, matching the paper's
    /// accounting of analysis-relevant events).
    pub fn total_monitored(&self) -> u64 {
        self.reads
            + self.writes
            + self.acquires
            + self.releases
            + self.forks
            + self.joins
            + self.volatiles
            + self.barriers
    }

    /// Percentage breakdown into reads / writes / other.
    pub fn ratios(&self) -> OpMixRatios {
        let total = self.total_monitored();
        if total == 0 {
            return OpMixRatios::default();
        }
        let pct = |n: u64| 100.0 * n as f64 / total as f64;
        OpMixRatios {
            reads_pct: pct(self.reads),
            writes_pct: pct(self.writes),
            other_pct: pct(total - self.reads - self.writes),
        }
    }
}

impl std::ops::Add for OpMix {
    type Output = OpMix;

    fn add(self, rhs: OpMix) -> OpMix {
        OpMix {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            acquires: self.acquires + rhs.acquires,
            releases: self.releases + rhs.releases,
            forks: self.forks + rhs.forks,
            joins: self.joins + rhs.joins,
            volatiles: self.volatiles + rhs.volatiles,
            barriers: self.barriers + rhs.barriers,
            waits: self.waits + rhs.waits,
            markers: self.markers + rhs.markers,
        }
    }
}

impl std::iter::Sum for OpMix {
    fn sum<I: Iterator<Item = OpMix>>(iter: I) -> OpMix {
        iter.fold(OpMix::default(), |a, b| a + b)
    }
}

/// The reads/writes/other percentage split of Figure 2's margin notes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpMixRatios {
    /// Percentage of monitored operations that are data reads.
    pub reads_pct: f64,
    /// Percentage that are data writes.
    pub writes_pct: f64,
    /// Percentage that are synchronization operations.
    pub other_pct: f64,
}

impl fmt::Display for OpMixRatios {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads {:.1}% / writes {:.1}% / other {:.1}%",
            self.reads_pct, self.writes_pct, self.other_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LockId, VarId};
    use ft_clock::Tid;

    #[test]
    fn counts_each_category() {
        let t = Tid::new(0);
        let u = Tid::new(1);
        let x = VarId::new(0);
        let m = LockId::new(0);
        let events = vec![
            Op::Read(t, x),
            Op::Read(t, x),
            Op::Write(t, x),
            Op::Acquire(t, m),
            Op::Wait(t, m),
            Op::Notify(t, m),
            Op::Release(t, m),
            Op::Fork(t, u),
            Op::Join(t, u),
            Op::VolatileWrite(t, x),
            Op::BarrierRelease(vec![t, u]),
            Op::AtomicBegin(t),
            Op::AtomicEnd(t),
        ];
        let mix = OpMix::of(&events);
        assert_eq!(mix.reads, 2);
        assert_eq!(mix.writes, 1);
        assert_eq!(mix.acquires, 2); // explicit + wait
        assert_eq!(mix.releases, 2);
        assert_eq!(mix.waits, 1);
        assert_eq!(mix.markers, 3); // notify + begin + end
        assert_eq!(mix.forks, 1);
        assert_eq!(mix.joins, 1);
        assert_eq!(mix.volatiles, 1);
        assert_eq!(mix.barriers, 1);
        assert_eq!(mix.total_monitored(), 11);
    }

    #[test]
    fn ratios_sum_to_hundred() {
        let t = Tid::new(0);
        let x = VarId::new(0);
        let events: Vec<Op> = (0..82)
            .map(|_| Op::Read(t, x))
            .chain((0..15).map(|_| Op::Write(t, x)))
            .chain((0..3).map(|_| Op::Acquire(t, LockId::new(0))))
            .collect();
        let r = OpMix::of(&events).ratios();
        assert!((r.reads_pct + r.writes_pct + r.other_pct - 100.0).abs() < 1e-9);
        assert!(r.reads_pct > 80.0);
    }

    #[test]
    fn empty_mix_has_zero_ratios() {
        let r = OpMix::default().ratios();
        assert_eq!(r, OpMixRatios::default());
    }

    #[test]
    fn mixes_add_and_sum() {
        let t = Tid::new(0);
        let x = VarId::new(0);
        let a = OpMix::of(&[Op::Read(t, x)]);
        let b = OpMix::of(&[Op::Write(t, x)]);
        let s: OpMix = vec![a, b].into_iter().sum();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
    }
}
