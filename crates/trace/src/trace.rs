//! The [`Trace`] container and stand-alone feasibility validation.

use crate::builder::{FeasibilityError, TraceBuilder};
use crate::event::{ObjId, Op};
use crate::stats::OpMix;

/// A feasible execution trace of a multithreaded program (§2.1).
///
/// A trace records the interleaved sequence of operations performed by all
/// threads, together with metadata needed by the analyses:
///
/// * `n_threads`, `n_vars`, `n_locks` — sizes of the id spaces, so detectors
///   can pre-size their shadow state;
/// * `var_objects` — the owning object of each variable, used by the
///   coarse-grain analysis of §4 ("Granularity").
///
/// Construct traces with [`TraceBuilder`] (which enforces feasibility as
/// operations are appended) or deserialize them and re-check with
/// [`validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trace {
    pub(crate) events: Vec<Op>,
    pub(crate) n_threads: u32,
    pub(crate) n_vars: u32,
    pub(crate) n_locks: u32,
    /// `var_objects[v]` is the object that owns variable `v`; defaults to a
    /// distinct object per variable (i.e. coarse == fine).
    pub(crate) var_objects: Vec<ObjId>,
}

impl Trace {
    /// The events in program order.
    #[inline]
    pub fn events(&self) -> &[Op] {
        &self.events
    }

    /// Number of thread ids used (ids are dense in `0..n_threads`).
    #[inline]
    pub fn n_threads(&self) -> u32 {
        self.n_threads
    }

    /// Number of variable ids used.
    #[inline]
    pub fn n_vars(&self) -> u32 {
        self.n_vars
    }

    /// Number of lock ids used.
    #[inline]
    pub fn n_locks(&self) -> u32 {
        self.n_locks
    }

    /// Number of events.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the trace has no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The object owning variable `v` (for the coarse-grain analysis).
    #[inline]
    pub fn object_of(&self, v: crate::VarId) -> ObjId {
        self.var_objects
            .get(v.as_usize())
            .copied()
            .unwrap_or(ObjId::new(v.as_u32()))
    }

    /// Number of distinct objects referenced by `var_objects`.
    pub fn n_objects(&self) -> u32 {
        let mut objects: Vec<u32> = self.var_objects.iter().map(|o| o.as_u32()).collect();
        objects.sort_unstable();
        objects.dedup();
        objects.len() as u32
    }

    /// Computes the operation-mix statistics of this trace (the Figure 2
    /// "82.3% reads / 14.5% writes / 3.3% other" breakdown).
    pub fn op_mix(&self) -> OpMix {
        OpMix::of(self.events())
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, Op> {
        self.events.iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Op;
    type IntoIter = std::slice::Iter<'a, Op>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// Checks that a sequence of events forms a feasible trace (§2.1): locks are
/// acquired/released in a well-nested ownership discipline, no thread runs
/// before it is forked or after it is joined, and ids are in range.
///
/// This is the stand-alone re-validation used for deserialized traces;
/// [`TraceBuilder`] enforces the same rules incrementally.
///
/// # Errors
///
/// Returns the first [`FeasibilityError`] encountered, annotated with the
/// offending event index.
pub fn validate(events: &[Op]) -> Result<Trace, FeasibilityError> {
    let mut b = TraceBuilder::new();
    for op in events {
        b.push(op.clone())?;
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LockId, VarId};
    use ft_clock::Tid;

    #[test]
    fn validate_accepts_well_formed_trace() {
        let t0 = Tid::new(0);
        let t1 = Tid::new(1);
        let x = VarId::new(0);
        let m = LockId::new(0);
        let events = vec![
            Op::Fork(t0, t1),
            Op::Acquire(t0, m),
            Op::Write(t0, x),
            Op::Release(t0, m),
            Op::Acquire(t1, m),
            Op::Read(t1, x),
            Op::Release(t1, m),
            Op::Join(t0, t1),
        ];
        let trace = validate(&events).unwrap();
        assert_eq!(trace.len(), 8);
        assert_eq!(trace.n_threads(), 2);
        assert_eq!(trace.n_vars(), 1);
        assert_eq!(trace.n_locks(), 1);
    }

    #[test]
    fn validate_rejects_double_acquire() {
        let t0 = Tid::new(0);
        let t1 = Tid::new(1);
        let m = LockId::new(0);
        let events = vec![Op::Fork(t0, t1), Op::Acquire(t0, m), Op::Acquire(t1, m)];
        assert!(validate(&events).is_err());
    }

    #[test]
    fn object_of_defaults_to_identity() {
        let trace = validate(&[Op::Write(Tid::new(0), VarId::new(3))]).unwrap();
        assert_eq!(trace.object_of(VarId::new(3)), ObjId::new(3));
    }

    #[test]
    fn empty_trace_is_fine() {
        let trace = validate(&[]).unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.n_objects(), 0);
    }
}
