//! The capstone soundness check: the vector-clock oracle agrees with the
//! *definitional* happens-before relation (a direct transitive closure of
//! §2.1) on which variables are racy — so the oracle, and through the
//! agreement tests every detector, is pinned to the paper's definition
//! rather than to a second copy of the vector-clock algebra.
//!
//! Randomized cases are driven by the workspace [`Prng`] with fixed seeds,
//! so every run explores the same (large) family of traces.

use ft_trace::gen::{self, GenConfig};
use ft_trace::{definitional_race_vars, HbOracle, Prng, Trace};

fn assert_agreement(trace: &Trace, label: &str) {
    let by_definition = definitional_race_vars(trace);
    let by_clocks = HbOracle::analyze(trace).race_vars();
    assert_eq!(
        by_clocks,
        by_definition,
        "{label}: vector-clock oracle disagrees with the §2.1 definition\n\
         trace ({} events): {:?}",
        trace.len(),
        trace.events()
    );
}

#[test]
fn oracle_matches_definition_on_chaotic_traces() {
    let mut rng = Prng::seed_from_u64(0x0dac1e);
    for _ in 0..48 {
        let seed = rng.gen_range(0u64..100_000);
        let threads = rng.gen_range(2u32..6);
        let vars = rng.gen_range(1u32..6);
        let locks = rng.gen_range(1u32..4);
        let ops = rng.gen_range(10usize..150);
        let trace = gen::chaotic(threads, vars, locks, ops, seed);
        assert_agreement(&trace, "chaotic");
    }
}

#[test]
fn oracle_matches_definition_on_structured_traces() {
    let mut rng = Prng::seed_from_u64(0x57d0c7);
    for _ in 0..48 {
        let seed = rng.gen_range(0u64..10_000);
        let w_racy = rng.gen_range(0.0f64..0.5);
        let cfg = GenConfig {
            ops: 140,
            threads: 3,
            vars: 8,
            p_barrier: 0.01,
            p_volatile: 0.02,
            ..GenConfig::default().with_races(w_racy)
        };
        let trace = gen::generate(&cfg, seed);
        assert_agreement(&trace, "structured");
    }
}

#[test]
fn soak_oracle_vs_definition() {
    for seed in 0..400u64 {
        let trace = gen::chaotic(4, 4, 3, 120, seed);
        assert_agreement(&trace, "soak");
    }
}
