//! The 16 benchmark simulations of Table 1.

use crate::patterns::{Par, ParBuilder, Scale};
use ft_runtime::sim::{Program, Script};
use ft_trace::{Trace, VarId};

/// Registry entry for one paper benchmark.
#[derive(Copy, Clone, Debug)]
pub struct Benchmark {
    /// Benchmark name (Table 1 row).
    pub name: &'static str,
    /// Thread count from Table 1.
    pub threads: u32,
    /// Races FastTrack reports (the Table 1 FASTTRACK "Warnings" column).
    pub expected_races: usize,
    /// `false` for the rows marked '*' (not compute-bound), which the paper
    /// excludes from average slowdowns.
    pub compute_bound: bool,
}

/// All 16 benchmarks in the paper's row order.
pub const BENCHMARKS: &[Benchmark] = &[
    Benchmark {
        name: "colt",
        threads: 11,
        expected_races: 0,
        compute_bound: true,
    },
    Benchmark {
        name: "crypt",
        threads: 7,
        expected_races: 0,
        compute_bound: true,
    },
    Benchmark {
        name: "lufact",
        threads: 4,
        expected_races: 0,
        compute_bound: true,
    },
    Benchmark {
        name: "moldyn",
        threads: 4,
        expected_races: 0,
        compute_bound: true,
    },
    Benchmark {
        name: "montecarlo",
        threads: 4,
        expected_races: 0,
        compute_bound: true,
    },
    Benchmark {
        name: "mtrt",
        threads: 5,
        expected_races: 1,
        compute_bound: true,
    },
    Benchmark {
        name: "raja",
        threads: 2,
        expected_races: 0,
        compute_bound: true,
    },
    Benchmark {
        name: "raytracer",
        threads: 4,
        expected_races: 1,
        compute_bound: true,
    },
    Benchmark {
        name: "sparse",
        threads: 4,
        expected_races: 0,
        compute_bound: true,
    },
    Benchmark {
        name: "series",
        threads: 4,
        expected_races: 0,
        compute_bound: true,
    },
    Benchmark {
        name: "sor",
        threads: 4,
        expected_races: 0,
        compute_bound: true,
    },
    Benchmark {
        name: "tsp",
        threads: 5,
        expected_races: 1,
        compute_bound: true,
    },
    Benchmark {
        name: "elevator",
        threads: 5,
        expected_races: 0,
        compute_bound: false,
    },
    Benchmark {
        name: "philo",
        threads: 6,
        expected_races: 0,
        compute_bound: false,
    },
    Benchmark {
        name: "hedc",
        threads: 6,
        expected_races: 3,
        compute_bound: false,
    },
    Benchmark {
        name: "jbb",
        threads: 5,
        expected_races: 2,
        compute_bound: false,
    },
];

/// Builds the named benchmark's trace.
///
/// # Panics
///
/// Panics if `name` is not a registry entry.
pub fn build(name: &str, scale: Scale, seed: u64) -> Trace {
    match name {
        "colt" => colt(scale, seed),
        "crypt" => crypt(scale, seed),
        "lufact" => lufact(scale, seed),
        "moldyn" => moldyn(scale, seed),
        "montecarlo" => montecarlo(scale, seed),
        "mtrt" => mtrt(scale, seed),
        "raja" => raja(scale, seed),
        "raytracer" => raytracer(scale, seed),
        "sparse" => sparse(scale, seed),
        "series" => series(scale, seed),
        "sor" => sor(scale, seed),
        "tsp" => tsp(scale, seed),
        "elevator" => elevator(scale, seed),
        "philo" => philo(scale, seed),
        "hedc" => hedc(scale, seed),
        "jbb" => jbb(scale, seed),
        other => panic!("unknown benchmark {other:?}"),
    }
}

/// Per-worker slice of thread-local variables, grouped 8 fields/object.
fn local_slices(p: &mut Par, per_worker: u32) -> Vec<Vec<VarId>> {
    let n = p.workers.len();
    let mut obj = 100_000; // object ids distinct from the race/table vars
    (0..n)
        .map(|_| {
            let vars = p.vars(per_worker);
            obj = p.group(&vars, 8, obj);
            vars
        })
        .collect()
}

/// Slice length so each worker-local variable is touched ~`touches` times —
/// array-style working sets that grow with the trace, as in the real
/// benchmarks (this is what makes per-location shadow state, and hence the
/// BasicVC/DJIT⁺ memory traffic, realistic).
fn slice_len(scale: Scale, workers: usize, touches: usize) -> u32 {
    (scale.ops / (workers * touches)).clamp(32, 65_536) as u32
}

/// Shared-table size scaled to the trace (read-shared data sets).
fn table_len(scale: Scale, divisor: usize) -> u32 {
    (scale.ops / divisor).clamp(64, 32_768) as u32
}

/// colt: scientific computing library — matrix kernels on worker-local
/// slices plus a few lock-protected result accumulators. Race-free.
fn colt(scale: Scale, seed: u64) -> Trace {
    let mut pb = ParBuilder::new();
    let table = pb.shared_table(table_len(scale, 120));
    let mut p = pb.fork(10, seed);
    // Three race-free volatile hand-offs Eraser misreads (Table 1: colt,
    // ERASER warnings = 3, FASTTRACK = 0).
    for _ in 0..3 {
        let data = p.var();
        let flag = p.var();
        p.inject_volatile_handoff_fp(data, flag);
    }
    let slices = local_slices(&mut p, slice_len(scale, 10, 16));
    let m = p.lock();
    let acc = p.vars(8);
    while p.len() < scale.ops {
        let i = p.rng_range(p.workers.len());
        let t = p.workers[i];
        let slice = slices[i].clone();
        match p.rng_range(10) {
            0..=5 => p.local_burst(t, &slice, 24, 0.10),
            6..=8 => p.shared_reads(t, &table, 10),
            _ => p.locked_update(t, m, &acc, 4),
        }
    }
    p.finish()
}

/// crypt: IDEA encryption — each worker en/decrypts its own slice using a
/// read-shared key schedule. Race-free, almost no locking.
fn crypt(scale: Scale, seed: u64) -> Trace {
    let mut pb = ParBuilder::new();
    let keys = pb.shared_table(64);
    let mut p = pb.fork(6, seed);
    let slices = local_slices(&mut p, slice_len(scale, 6, 4));
    while p.len() < scale.ops {
        let i = p.rng_range(p.workers.len());
        let t = p.workers[i];
        let slice = slices[i].clone();
        p.shared_reads(t, &keys, 2);
        p.local_burst(t, &slice, 28, 0.18);
    }
    p.barrier();
    p.finish()
}

/// lufact: LU factorization — per-round pivot row broadcast through
/// barriers, rotating owner. Race-free.
fn lufact(scale: Scale, seed: u64) -> Trace {
    let mut p = Par::new(3, seed);
    for _ in 0..4 {
        let data = p.var();
        let flag = p.var();
        p.inject_volatile_handoff_fp(data, flag); // Table 1: ERASER = 4
    }
    let pivot = p.vars(12);
    let slices = local_slices(&mut p, slice_len(scale, 3, 6));
    let mut round = 0usize;
    while p.len() < scale.ops {
        let owner = p.workers[round % p.workers.len()];
        for &v in &pivot {
            p.b.write(owner, v).expect("pivot write");
            p.b.write(owner, v).expect("pivot normalize write");
        }
        p.barrier();
        for (i, slice) in slices.iter().cloned().enumerate() {
            let t = p.workers[i];
            p.shared_reads(t, &pivot, 12);
            p.local_burst(t, &slice, 80, 0.15);
        }
        p.barrier();
        round += 1;
    }
    p.finish()
}

/// moldyn: molecular dynamics — barrier phases plus a lock-protected force
/// reduction each round. Race-free.
fn moldyn(scale: Scale, seed: u64) -> Trace {
    let mut p = Par::new(3, seed);
    let m = p.lock();
    let forces = p.vars(8);
    let slices = local_slices(&mut p, slice_len(scale, 3, 8));
    while p.len() < scale.ops {
        for (i, slice) in slices.iter().cloned().enumerate() {
            let t = p.workers[i];
            p.local_burst(t, &slice, 90, 0.15);
        }
        for i in 0..p.workers.len() {
            let t = p.workers[i];
            p.locked_update(t, m, &forces, 5);
        }
        p.barrier();
    }
    p.finish()
}

/// montecarlo: workers sample a large read-shared dataset into local
/// accumulators; one lock-protected global result merge. Race-free.
fn montecarlo(scale: Scale, seed: u64) -> Trace {
    let mut pb = ParBuilder::new();
    let data = pb.shared_table(table_len(scale, 40));
    let mut p = pb.fork(3, seed);
    let m = p.lock();
    let global = p.vars(4);
    let slices = local_slices(&mut p, slice_len(scale, 3, 24));
    while p.len() < scale.ops {
        let i = p.rng_range(p.workers.len());
        let t = p.workers[i];
        let slice = slices[i].clone();
        p.shared_reads(t, &data, 12);
        p.local_burst(t, &slice, 24, 0.15);
        if p.rng_range(16) == 0 {
            p.locked_update(t, m, &global, 3);
        }
    }
    p.finish()
}

/// mtrt: SPEC ray tracer — read-shared scene, local framebuffer slices,
/// and the one known benign race (an unlocked read of a counter updated
/// under a lock).
fn mtrt(scale: Scale, seed: u64) -> Trace {
    let mut pb = ParBuilder::new();
    let scene = pb.shared_table(table_len(scale, 80));
    let mut p = pb.fork(4, seed);
    let counter = p.var();
    let m = p.lock();
    p.inject_unlocked_read_race(counter, m);
    let slices = local_slices(&mut p, slice_len(scale, 4, 8));
    while p.len() < scale.ops {
        let i = p.rng_range(p.workers.len());
        let t = p.workers[i];
        let slice = slices[i].clone();
        p.shared_reads(t, &scene, 8);
        p.local_burst(t, &slice, 20, 0.12);
    }
    p.finish()
}

/// raja: a small two-thread ray tracer. Race-free.
fn raja(scale: Scale, seed: u64) -> Trace {
    let mut pb = ParBuilder::new();
    let scene = pb.shared_table(table_len(scale, 160));
    let mut p = pb.fork(1, seed);
    let slices = local_slices(&mut p, slice_len(scale, 1, 10));
    let t = p.workers[0];
    let slice = slices[0].clone();
    while p.len() < scale.ops {
        p.shared_reads(t, &scene, 6);
        p.local_burst(t, &slice, 24, 0.12);
    }
    p.finish()
}

/// raytracer: Java Grande ray tracer with its real write-write race on the
/// `checksum` field.
fn raytracer(scale: Scale, seed: u64) -> Trace {
    let mut pb = ParBuilder::new();
    let scene = pb.shared_table(table_len(scale, 100));
    let mut p = pb.fork(3, seed);
    let checksum = p.var();
    p.inject_write_write_race(checksum);
    let slices = local_slices(&mut p, slice_len(scale, 3, 7));
    while p.len() < scale.ops {
        let i = p.rng_range(p.workers.len());
        let t = p.workers[i];
        let slice = slices[i].clone();
        p.shared_reads(t, &scene, 6);
        p.local_burst(t, &slice, 24, 0.15);
    }
    p.barrier();
    p.finish()
}

/// sparse: sparse mat-vec — read-shared matrix, worker-owned output
/// slices, barrier per iteration. Race-free.
fn sparse(scale: Scale, seed: u64) -> Trace {
    let mut pb = ParBuilder::new();
    let matrix = pb.shared_table(table_len(scale, 60));
    let mut p = pb.fork(3, seed);
    let slices = local_slices(&mut p, slice_len(scale, 3, 10));
    while p.len() < scale.ops {
        for (i, slice) in slices.iter().cloned().enumerate() {
            let t = p.workers[i];
            p.shared_reads(t, &matrix, 10);
            p.local_burst(t, &slice, 24, 0.12);
        }
        p.barrier();
    }
    p.finish()
}

/// series: Fourier coefficients — embarrassingly parallel, purely
/// thread-local with a final join. Race-free, almost no synchronization.
fn series(scale: Scale, seed: u64) -> Trace {
    let mut p = Par::new(3, seed);
    let data = p.var();
    let flag = p.var();
    p.inject_volatile_handoff_fp(data, flag); // Table 1: ERASER = 1
    let slices = local_slices(&mut p, slice_len(scale, 3, 4));
    while p.len() < scale.ops {
        let i = p.rng_range(p.workers.len());
        let t = p.workers[i];
        let slice = slices[i].clone();
        p.local_burst(t, &slice, 24, 0.12);
    }
    p.finish()
}

/// sor: successive over-relaxation — neighbors exchange boundary rows
/// through double-barrier phases. Race-free.
fn sor(scale: Scale, seed: u64) -> Trace {
    let mut p = Par::new(3, seed);
    for _ in 0..3 {
        let data = p.var();
        let flag = p.var();
        p.inject_volatile_handoff_fp(data, flag); // Table 1: ERASER = 3
    }
    let n = p.workers.len();
    let boundaries: Vec<Vec<VarId>> = (0..n).map(|_| p.vars(8)).collect();
    let slices = local_slices(&mut p, slice_len(scale, 3, 8));
    while p.len() < scale.ops {
        // Read phase: everyone reads neighbours' boundaries.
        for i in 0..n {
            let t = p.workers[i];
            let left = boundaries[(i + n - 1) % n].clone();
            let right = boundaries[(i + 1) % n].clone();
            p.shared_reads(t, &left, 8);
            p.shared_reads(t, &right, 8);
            let slice = slices[i].clone();
            p.local_burst(t, &slice, 60, 0.18);
        }
        p.barrier();
        // Write phase: everyone writes its own boundary.
        for (i, boundary) in boundaries.iter().cloned().enumerate().take(n) {
            let t = p.workers[i];
            for &v in &boundary {
                p.b.write(t, v).expect("own boundary write");
                p.b.write(t, v).expect("own boundary smooth write");
            }
        }
        p.barrier();
    }
    p.finish()
}

/// tsp: branch-and-bound travelling salesman — lock-protected work queue
/// and best-tour updates, plus the known benign unlocked read of the
/// current bound.
fn tsp(scale: Scale, seed: u64) -> Trace {
    let mut p = Par::new(4, seed);
    let queue_lock = p.lock();
    let best_lock = p.lock();
    let queue = p.vars(16);
    let best = p.vars(4);
    let bound = p.var();
    p.inject_unlocked_read_race(bound, best_lock);
    // Table 1: tsp is Eraser's worst case — 9 warnings vs 1 real race.
    for _ in 0..8 {
        let data = p.var();
        let flag = p.var();
        p.inject_volatile_handoff_fp(data, flag);
    }
    let slices = local_slices(&mut p, slice_len(scale, 4, 16));
    while p.len() < scale.ops {
        let i = p.rng_range(p.workers.len());
        let t = p.workers[i];
        let slice = slices[i].clone();
        p.locked_update(t, queue_lock, &queue, 4);
        p.local_burst(t, &slice, 24, 0.15);
        if p.rng_range(8) == 0 {
            p.locked_update(t, best_lock, &best, 3);
        }
    }
    p.finish()
}

/// elevator: a lock-heavy discrete-event simulator — nearly all shared
/// state lives under one monitor. Race-free; not compute-bound.
fn elevator(scale: Scale, seed: u64) -> Trace {
    let mut p = Par::new(4, seed);
    let monitor = p.lock();
    let state = p.vars(24);
    let slices = local_slices(&mut p, 4);
    while p.len() < scale.ops {
        let i = p.rng_range(p.workers.len());
        let t = p.workers[i];
        p.locked_update(t, monitor, &state, 8);
        let slice = slices[i].clone();
        p.local_burst(t, &slice, 6, 0.2);
    }
    p.finish()
}

/// philo: dining philosophers on the program simulator — fork locks
/// acquired in global order, shared plates protected by the common fork.
/// Race-free; not compute-bound.
fn philo(scale: Scale, seed: u64) -> Trace {
    let philosophers = 5usize;
    let rounds = (scale.ops / (philosophers * 9)).max(2);
    let mut program = Program::new();
    let mut ids = Vec::new();
    for i in 0..philosophers {
        let left = i;
        let right = (i + 1) % philosophers;
        let (lo, hi) = (left.min(right), left.max(right));
        let plate = VarId::new(i as u32);
        let own = VarId::new((philosophers + i) as u32);
        let script = Script::new()
            .repeat(rounds, |s| {
                s.lock(ft_trace::LockId::new(lo as u32))
                    .lock(ft_trace::LockId::new(hi as u32))
                    .read(plate)
                    .read(plate)
                    .read(plate)
                    .write(plate)
                    .write(plate)
                    .read(own)
                    .read(own)
                    .read(own)
                    .read(own)
                    .read(own)
                    .read(own)
                    .write(own)
                    .write(own)
                    .read(own)
                    .read(own)
                    .write(own)
                    .unlock(ft_trace::LockId::new(hi as u32))
                    .unlock(ft_trace::LockId::new(lo as u32))
            })
            .build();
        ids.push(program.add_thread(script));
    }
    let mut main = Script::new();
    for &id in &ids {
        main = main.fork(id);
    }
    for &id in &ids {
        main = main.join(id);
    }
    program.main(main.build());
    program
        .run(seed)
        .expect("philo is deadlock-free under ordered forks")
}

/// hedc: the astrophysics web-crawler — a lock-protected task pool whose
/// task hand-offs contain the three real races of Table 1. Two of them are
/// write→read ownership transfers that Eraser's state machine misses; one
/// extra fork/join pattern triggers Eraser's classic false alarm.
fn hedc(scale: Scale, seed: u64) -> Trace {
    let mut pb = ParBuilder::new();
    let config = pb.shared_table(24);
    let mut p = pb.fork(5, seed);
    let pool_lock = p.lock();
    let pool = p.vars(12);
    // The three real races.
    let task_state = p.var();
    p.inject_write_write_race(task_state);
    let task_url = p.var();
    p.inject_write_read_race(task_url);
    let task_result = p.var();
    p.inject_write_read_race(task_result);
    // An Eraser false alarm: worker writes, main rewrites after join; we
    // emulate with a late main write (ordered by join in finish()) —
    // allocated here, written post-join below.
    let summary = p.var();
    let w0 = p.workers[0];
    p.b.write(w0, summary).expect("worker summary write");
    let slices = local_slices(&mut p, 8);
    while p.len() < scale.ops {
        let i = p.rng_range(p.workers.len());
        let t = p.workers[i];
        p.locked_update(t, pool_lock, &pool, 4);
        p.shared_reads(t, &config, 3);
        let slice = slices[i].clone();
        p.local_burst(t, &slice, 8, 0.15);
    }
    let main = p.main;
    let mut trace_builder = p.into_builder_after_joins();
    trace_builder
        .write(main, summary)
        .expect("post-join main write");
    trace_builder.finish()
}

/// jbb: the SPEC JBB business-object workload — per-warehouse locks,
/// read-shared item catalog, and its two known races on thread-pool
/// communication fields.
fn jbb(scale: Scale, seed: u64) -> Trace {
    let mut pb = ParBuilder::new();
    let catalog = pb.shared_table(table_len(scale, 100));
    let mut p = pb.fork(4, seed);
    let warehouse_locks: Vec<_> = (0..4).map(|_| p.lock()).collect();
    let warehouses: Vec<Vec<VarId>> = (0..4).map(|_| p.vars(16)).collect();
    let comm = p.var();
    p.inject_write_read_race(comm);
    let status = p.var();
    p.inject_unlocked_read_race(status, warehouse_locks[0]);
    let data = p.var();
    let flag = p.var();
    p.inject_volatile_handoff_fp(data, flag); // jbb's spurious Eraser report
    let slices = local_slices(&mut p, slice_len(scale, 4, 20));
    while p.len() < scale.ops {
        let i = p.rng_range(p.workers.len());
        let t = p.workers[i];
        let w = p.rng_range(4);
        p.locked_update(t, warehouse_locks[w], &warehouses[w].clone(), 5);
        p.shared_reads(t, &catalog, 6);
        let slice = slices[i].clone();
        p.local_burst(t, &slice, 14, 0.15);
    }
    p.finish()
}
