//! The §5.3 Eclipse-like workload.
//!
//! The paper validates FastTrack "in a more realistic setting" by checking
//! the Eclipse 3.4 IDE across five user-initiated operations, with up to 24
//! concurrent threads and a large, idiom-diverse codebase ("wait/notify,
//! semaphores, readers-writer locks, etc."). ERASER reported potential
//! races on 960 distinct accesses — overwhelmingly spurious — while
//! FASTTRACK reported 30 distinct warnings.
//!
//! `eclipse_sim` reproduces that *shape*: 24 threads, thousands of shadow
//! locations grouped into objects, heavy lock/wait/volatile traffic, a
//! known number of genuine races per operation (30 across all five), and a
//! large population of volatile/wait-notify hand-offs that lockset
//! analysis misreads.

use crate::patterns::{ParBuilder, Scale};
use ft_trace::{Op, Trace};

/// The five scripted Eclipse operations of §5.3.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum EclipseOp {
    /// Launch Eclipse and load a four-project workspace.
    Startup,
    /// Import and build a 23 kloc project.
    Import,
    /// Rebuild a four-project 65 kloc workspace.
    CleanSmall,
    /// Rebuild a 290 kloc project.
    CleanLarge,
    /// Launch the debugger on a crashing program.
    Debug,
}

impl EclipseOp {
    /// All five operations in the paper's table order.
    pub const ALL: [EclipseOp; 5] = [
        EclipseOp::Startup,
        EclipseOp::Import,
        EclipseOp::CleanSmall,
        EclipseOp::CleanLarge,
        EclipseOp::Debug,
    ];

    /// Display name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            EclipseOp::Startup => "Startup",
            EclipseOp::Import => "Import",
            EclipseOp::CleanSmall => "Clean Small",
            EclipseOp::CleanLarge => "Clean Large",
            EclipseOp::Debug => "Debug",
        }
    }

    /// The paper's uninstrumented base time for this operation (seconds);
    /// used only to scale relative trace sizes.
    pub fn base_time_secs(self) -> f64 {
        match self {
            EclipseOp::Startup => 6.0,
            EclipseOp::Import => 2.5,
            EclipseOp::CleanSmall => 2.7,
            EclipseOp::CleanLarge => 6.5,
            EclipseOp::Debug => 1.1,
        }
    }

    /// Genuine races in this operation (they sum to the paper's 30
    /// distinct FastTrack warnings).
    pub fn real_races(self) -> usize {
        match self {
            EclipseOp::Startup => 8,
            EclipseOp::Import => 6,
            EclipseOp::CleanSmall => 6,
            EclipseOp::CleanLarge => 7,
            EclipseOp::Debug => 3,
        }
    }

    /// Spurious-lockset hand-offs in this operation (they produce roughly
    /// the paper's 960 distinct Eraser reports across all five).
    pub fn spurious_handoffs(self) -> usize {
        match self {
            EclipseOp::Startup => 250,
            EclipseOp::Import => 160,
            EclipseOp::CleanSmall => 170,
            EclipseOp::CleanLarge => 270,
            EclipseOp::Debug => 80,
        }
    }
}

/// Builds one Eclipse operation's trace. Uses 24 threads (23 workers plus
/// the UI/main thread), per the paper's "up to 24 concurrent threads".
pub fn build(op: EclipseOp, scale: Scale, seed: u64) -> Trace {
    let ops_target = ((scale.ops as f64) * op.base_time_secs() / 6.0) as usize;
    let mut pb = ParBuilder::new();
    // The plugin registry / compilation-unit cache: a large read-shared
    // table initialized on the UI thread.
    let registry = pb.shared_table(512);
    let mut p = pb.fork(23, seed);

    // The §5.3 warning populations.
    for i in 0..op.real_races() {
        let v = p.var();
        match i % 3 {
            // "Races on an array of nodes in a tree data structure".
            0 => p.inject_write_write_race(v),
            // "Races on fields related to progress meters".
            1 => p.inject_write_read_race(v),
            // "Double-checked locking" / "benign races on array entries".
            _ => {
                let m = p.lock();
                p.inject_unlocked_read_race(v, m);
            }
        }
    }
    for _ in 0..op.spurious_handoffs() {
        let data = p.var();
        let flag = p.var();
        p.inject_volatile_handoff_fp(data, flag);
    }

    // Idiom-diverse steady state: job-pool monitors with wait/notify,
    // per-project build locks, worker-local AST scratch space.
    let pool_lock = p.lock();
    let pool = p.vars(48);
    let project_locks: Vec<_> = (0..6).map(|_| p.lock()).collect();
    let projects: Vec<Vec<_>> = (0..6).map(|_| p.vars(64)).collect();
    let mut scratch = Vec::new();
    for _ in 0..p.workers.len() {
        let vars = p.vars(32);
        scratch.push(vars);
    }

    while p.len() < ops_target {
        let i = p.rng_range(p.workers.len());
        let t = p.workers[i];
        match p.rng_range(12) {
            0..=4 => {
                let slice = scratch[i].clone();
                p.local_burst(t, &slice, 20, 0.15);
            }
            5..=7 => p.shared_reads(t, &registry, 8),
            8..=9 => {
                let j = p.rng_range(projects.len());
                let vars = projects[j].clone();
                p.locked_update(t, project_locks[j], &vars, 5);
            }
            10 => p.locked_update(t, pool_lock, &pool, 4),
            _ => {
                // A job-pool wait: re-acquire semantics, no extra edges.
                p.b.acquire(t, pool_lock).expect("pool acquire");
                p.b.push(Op::Wait(t, pool_lock)).expect("pool wait");
                p.b.push(Op::Notify(t, pool_lock)).expect("pool notify");
                p.b.release(t, pool_lock).expect("pool release");
            }
        }
    }
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasttrack::{Detector, FastTrack};
    use ft_detectors::Eraser;

    #[test]
    fn total_real_races_is_thirty() {
        let total: usize = EclipseOp::ALL.iter().map(|op| op.real_races()).sum();
        assert_eq!(total, 30, "the paper's 30 distinct FastTrack warnings");
    }

    #[test]
    fn fasttrack_finds_exactly_the_real_races() {
        for op in EclipseOp::ALL {
            let trace = build(op, Scale::test(), 1);
            let mut ft = FastTrack::new();
            ft.run(&trace);
            assert_eq!(
                ft.warnings().len(),
                op.real_races(),
                "{}: {:?}",
                op.name(),
                ft.warnings()
            );
        }
    }

    #[test]
    fn eraser_warnings_dwarf_fasttrack_warnings() {
        let mut eraser_total = 0;
        let mut ft_total = 0;
        for op in EclipseOp::ALL {
            let trace = build(op, Scale::test(), 1);
            let mut er = Eraser::new();
            er.run(&trace);
            eraser_total += er.warnings().len();
            let mut ft = FastTrack::new();
            ft.run(&trace);
            ft_total += ft.warnings().len();
        }
        assert_eq!(ft_total, 30);
        assert!(
            eraser_total > 20 * ft_total,
            "Eraser should report an order of magnitude more: {eraser_total} vs {ft_total}"
        );
    }

    #[test]
    fn uses_24_threads() {
        let trace = build(EclipseOp::Startup, Scale::test(), 0);
        assert_eq!(trace.n_threads(), 24);
    }
}
