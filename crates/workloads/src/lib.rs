//! Simulated versions of the paper's benchmark programs (§5.1, Table 1).
//!
//! The original evaluation instruments 16 Java programs. Per the
//! substitution table in DESIGN.md, each is reproduced here as a generator
//! that emits an event trace with the benchmark's *analysis-relevant*
//! shape: its thread count (Table 1), its synchronization idiom (barriers
//! for the Java Grande kernels, locks for tsp/elevator, wait/notify for
//! philo, a thread pool for hedc, …), its sharing pattern (thread-local
//! slices, read-shared tables, lock-protected accumulators), and its known
//! races (the benign mtrt/tsp/jbb races, the raytracer checksum race, the
//! three hedc thread-pool races).
//!
//! Race *counts* per benchmark are deterministic across seeds — the racy
//! access pairs are constructed adjacently, not left to scheduling — so the
//! Table 1 "Warnings" columns are reproducible. Everything else (slice
//! sizes, access interleaving) is seeded-random.
//!
//! The [`eclipse`] module provides the §5.3 Eclipse-like workload with its
//! five scripted operations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmarks;
pub mod eclipse;
mod patterns;

pub use benchmarks::{build, Benchmark, BENCHMARKS};
pub use patterns::Scale;

#[cfg(test)]
mod tests {
    use super::*;
    use fasttrack::{Detector, FastTrack};
    use ft_trace::HbOracle;

    #[test]
    fn registry_covers_the_paper_table() {
        assert_eq!(BENCHMARKS.len(), 16);
        let names: Vec<&str> = BENCHMARKS.iter().map(|b| b.name).collect();
        for expected in [
            "colt",
            "crypt",
            "lufact",
            "moldyn",
            "montecarlo",
            "mtrt",
            "raja",
            "raytracer",
            "sparse",
            "series",
            "sor",
            "tsp",
            "elevator",
            "philo",
            "hedc",
            "jbb",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn all_benchmarks_build_and_have_expected_race_counts() {
        for bench in BENCHMARKS {
            for seed in 0..3u64 {
                let trace = build(bench.name, Scale::test(), seed);
                assert!(!trace.is_empty(), "{}: empty trace", bench.name);
                assert!(
                    trace.n_threads() >= bench.threads.min(2),
                    "{}: thread count",
                    bench.name
                );
                let mut ft = FastTrack::new();
                ft.run(&trace);
                assert_eq!(
                    ft.warnings().len(),
                    bench.expected_races,
                    "{} (seed {seed}): FastTrack warnings {:?}",
                    bench.name,
                    ft.warnings()
                );
            }
        }
    }

    #[test]
    fn benchmark_races_agree_with_oracle() {
        for bench in BENCHMARKS {
            let trace = build(bench.name, Scale::test(), 0);
            let oracle = HbOracle::analyze(&trace);
            let mut ft = FastTrack::new();
            ft.run(&trace);
            let mut ft_vars: Vec<_> = ft.warnings().iter().map(|w| w.var).collect();
            ft_vars.sort_unstable();
            ft_vars.dedup();
            assert_eq!(
                ft_vars,
                oracle.race_vars(),
                "{}: FastTrack disagrees with the oracle",
                bench.name
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        for bench in BENCHMARKS {
            let a = build(bench.name, Scale::test(), 5);
            let b = build(bench.name, Scale::test(), 5);
            assert_eq!(a, b, "{}", bench.name);
        }
    }

    #[test]
    fn hedc_races_are_mostly_missed_by_eraser() {
        use ft_detectors::Eraser;
        let trace = build("hedc", Scale::test(), 0);
        let mut ft = FastTrack::new();
        ft.run(&trace);
        assert_eq!(ft.warnings().len(), 3);
        let mut er = Eraser::new();
        er.run(&trace);
        // Table 1: Eraser reports fewer warnings on hedc, missing two of
        // the three races "due to an (intentional) unsoundness in how the
        // Eraser algorithm reasons about thread-local and read-shared data".
        assert!(
            er.warnings().len() < 3,
            "Eraser should miss the ownership-transfer races, got {:?}",
            er.warnings()
        );
    }

    #[test]
    fn barrier_benchmarks_trip_barrier_blind_eraser() {
        use ft_detectors::{Eraser, EraserConfig};
        // §5.1 footnote: without barrier reasoning Eraser's warning count
        // roughly triples. At least one barrier kernel must show the gap.
        let mut total_aware = 0;
        let mut total_blind = 0;
        for name in ["lufact", "sor", "moldyn", "sparse"] {
            let trace = build(name, Scale::test(), 0);
            let mut aware = Eraser::new();
            aware.run(&trace);
            let mut blind = Eraser::with_config(EraserConfig {
                barrier_aware: false,
            });
            blind.run(&trace);
            total_aware += aware.warnings().len();
            total_blind += blind.warnings().len();
        }
        assert!(
            total_blind > total_aware,
            "barrier-blind Eraser should warn more ({total_blind} vs {total_aware})"
        );
    }
}
