//! Shared building blocks for the benchmark simulations.

use ft_clock::Tid;

use ft_trace::Prng;
use ft_trace::{LockId, ObjId, Trace, TraceBuilder, VarId};

/// How large a benchmark trace to generate.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Approximate number of events per benchmark.
    pub ops: usize,
}

impl Scale {
    /// Small traces for unit/property tests (~3k events).
    pub fn test() -> Self {
        Scale { ops: 3_000 }
    }

    /// Benchmark-sized traces (~200k events) — large enough that the
    /// per-event analysis cost dominates and the Table 1/2/3 ratios are
    /// stable, small enough to run the full suite on a laptop.
    pub fn bench() -> Self {
        Scale { ops: 200_000 }
    }

    /// Large traces (~1M events) for memory studies.
    pub fn large() -> Self {
        Scale { ops: 1_000_000 }
    }
}

/// A fork/join parallel-section builder: main forks `n` workers, the
/// benchmark body interleaves their work, and `finish` joins everyone.
pub(crate) struct Par {
    pub b: TraceBuilder,
    pub rng: Prng,
    pub main: Tid,
    pub workers: Vec<Tid>,
    next_var: u32,
    next_lock: u32,
}

impl Par {
    /// Starts a parallel section with `workers` worker threads (total
    /// thread count is `workers + 1` including main, matching the Table 1
    /// "Thread Count" column).
    pub fn new(workers: u32, seed: u64) -> Self {
        let mut b = TraceBuilder::with_threads(1);
        let main = Tid::new(0);
        let workers: Vec<Tid> = (1..=workers).map(Tid::new).collect();
        for &w in &workers {
            b.fork(main, w).expect("fork of fresh worker");
        }
        Par {
            b,
            rng: Prng::seed_from_u64(seed),
            main,
            workers,
            next_var: 0,
            next_lock: 0,
        }
    }

    /// Allocates a contiguous range of variable ids.
    pub fn vars(&mut self, n: u32) -> Vec<VarId> {
        let start = self.next_var;
        self.next_var += n;
        (start..start + n).map(VarId::new).collect()
    }

    /// Allocates one variable id.
    pub fn var(&mut self) -> VarId {
        self.vars(1)[0]
    }

    /// Allocates a lock id.
    pub fn lock(&mut self) -> LockId {
        let id = self.next_lock;
        self.next_lock += 1;
        LockId::new(id)
    }

    /// Groups a variable range into objects of `per_object` fields (for the
    /// coarse-grain studies).
    pub fn group(&mut self, vars: &[VarId], per_object: u32, first_obj: u32) -> u32 {
        let mut obj = first_obj;
        for chunk in vars.chunks(per_object as usize) {
            for &v in chunk {
                self.b.set_var_object(v, ObjId::new(obj));
            }
            obj += 1;
        }
        obj
    }

    /// Worker does a burst of reads/writes over its own variables, modeled
    /// on the `acc += f(a[i])` kernel idiom that dominates the real
    /// benchmarks: element variables are read a couple of times each, and a
    /// per-burst *accumulator* variable is read-modify-written repeatedly
    /// within the same synchronization epoch.
    ///
    /// This reproduces the paper's access statistics — heavy read bias and
    /// high same-epoch rates (63–78% of reads, ~71% of writes) — which are
    /// exactly what the FastTrack/DJIT⁺ fast paths exploit.
    ///
    /// `write_ratio` is the target fraction of accesses that are writes
    /// (values above 0.45 are clamped: a read-modify-write idiom cannot
    /// exceed one write per two accesses).
    pub fn local_burst(&mut self, t: Tid, vars: &[VarId], accesses: usize, write_ratio: f64) {
        let wf = write_ratio.clamp(0.0, 0.4);
        // Each element contributes 2 reads; each accumulator update
        // contributes 1 read and 1.5 writes on average, so the update
        // probability that hits the target write fraction `wf` is
        // 1.5p = wf(2 + 2.5p)  ⇒  p = 2wf / (1.5 − 2.5wf).
        let p_update = (2.0 * wf / (1.5 - 2.5 * wf)).clamp(0.0, 1.0);
        let &acc = self.rng.choose(vars).expect("nonempty vars");
        let mut emitted = 0usize;
        while emitted < accesses {
            let &elem = self.rng.choose(vars).expect("nonempty vars");
            // Element access: a couple of reads (locality).
            for _ in 0..2.min(accesses - emitted) {
                self.b.read(t, elem).expect("local read");
                emitted += 1;
            }
            // Accumulator update: read-modify-write (sometimes write-again)
            // of the same variable, all within one epoch.
            if emitted < accesses && self.rng.gen_bool(p_update) {
                self.b.read(t, acc).expect("accumulator read");
                emitted += 1;
                if emitted < accesses {
                    self.b.write(t, acc).expect("accumulator write");
                    emitted += 1;
                }
                if emitted < accesses && self.rng.gen_bool(0.5) {
                    self.b.write(t, acc).expect("accumulator re-write");
                    emitted += 1;
                }
            }
        }
    }

    /// Worker reads from a shared read-only table (with the same re-read
    /// locality as [`Par::local_burst`]).
    pub fn shared_reads(&mut self, t: Tid, vars: &[VarId], count: usize) {
        let mut remaining = count;
        while remaining > 0 {
            let &v = self.rng.choose(vars).expect("nonempty vars");
            let touches = self.rng.gen_range(2usize..=3).min(remaining);
            for _ in 0..touches {
                self.b.read(t, v).expect("shared read");
            }
            remaining -= touches;
        }
    }

    /// Worker updates shared state inside one critical section: each chosen
    /// variable is read a couple of times and then (usually) written — the
    /// guarded read-modify-write idiom. `accesses` counts variables chosen;
    /// roughly `3 × accesses` events are emitted per section, keeping the
    /// synchronization share of the event stream realistic (~3%).
    pub fn locked_update(&mut self, t: Tid, m: LockId, vars: &[VarId], accesses: usize) {
        // Critical sections concentrate on a couple of fields (head/tail,
        // count/state, …), re-reading and re-writing them — the locality
        // behind the same-epoch fast-path hits on lock-protected data.
        let focus: Vec<VarId> = (0..2)
            .map(|_| *self.rng.choose(vars).expect("nonempty vars"))
            .collect();
        self.b.acquire(t, m).expect("acquire");
        for _ in 0..accesses {
            let &v = self.rng.choose(&focus).expect("nonempty focus");
            self.b.read(t, v).expect("locked read");
            if self.rng.gen_bool(0.5) {
                self.b.read(t, v).expect("locked re-read");
            }
            if self.rng.gen_bool(0.66) {
                self.b.write(t, v).expect("locked write");
                if self.rng.gen_bool(0.4) {
                    self.b.write(t, v).expect("locked re-write");
                }
            }
        }
        self.b.release(t, m).expect("release");
    }

    /// All workers pass a barrier together.
    pub fn barrier(&mut self) {
        self.b
            .barrier_release(self.workers.clone())
            .expect("barrier over live workers");
    }

    /// A deterministic write-write race on a dedicated variable: two
    /// distinct workers write it back-to-back with no synchronization.
    pub fn inject_write_write_race(&mut self, v: VarId) {
        let (a, b) = self.pick_two_workers();
        self.b.write(a, v).expect("racy write 1");
        self.b.write(b, v).expect("racy write 2");
    }

    /// A deterministic write-read race (the hedc ownership-transfer
    /// pattern Eraser misses): one worker writes, another reads, no sync.
    pub fn inject_write_read_race(&mut self, v: VarId) {
        let (a, b) = self.pick_two_workers();
        self.b.write(a, v).expect("racy write");
        self.b.read(b, v).expect("racy read");
    }

    /// A benign unlocked read of a variable otherwise updated under `m`
    /// (the tsp/mtrt "benign race" idiom): produces exactly one racy var.
    pub fn inject_unlocked_read_race(&mut self, v: VarId, m: LockId) {
        let (a, b) = self.pick_two_workers();
        self.b.acquire(a, m).expect("acquire");
        self.b.write(a, v).expect("locked write");
        self.b.release(a, m).expect("release");
        self.b.read(b, v).expect("unlocked racy read");
    }

    /// A race-*free* hand-off through a volatile flag — invisible to
    /// Eraser, which ignores volatile synchronization, so it produces
    /// exactly one spurious Eraser warning per call (the source of the
    /// paper's colt/lufact/series/sor/tsp false alarms).
    pub fn inject_volatile_handoff_fp(&mut self, data: VarId, flag: VarId) {
        let (a, b) = self.pick_two_workers();
        self.b.write(a, data).expect("publisher write");
        self.b.volatile_write(a, flag).expect("volatile publish");
        self.b.volatile_read(b, flag).expect("volatile subscribe");
        self.b.write(b, data).expect("subscriber write");
    }

    /// A seeded random index below `n`.
    pub fn rng_range(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Joins all workers and hands back the builder so the caller can
    /// append post-join main-thread work before finishing.
    pub fn into_builder_after_joins(mut self) -> TraceBuilder {
        for &w in &self.workers.clone() {
            self.b.join(self.main, w).expect("join live worker");
        }
        self.b
    }

    fn pick_two_workers(&mut self) -> (Tid, Tid) {
        assert!(self.workers.len() >= 2, "need two workers to race");
        let i = self.rng.gen_range(0..self.workers.len());
        let j = (i + 1 + self.rng.gen_range(0..self.workers.len() - 1)) % self.workers.len();
        (self.workers[i], self.workers[j])
    }

    /// Events emitted so far.
    pub fn len(&self) -> usize {
        self.b.len()
    }

    /// Joins all workers and finishes the trace.
    pub fn finish(mut self) -> Trace {
        for &w in &self.workers.clone() {
            self.b.join(self.main, w).expect("join live worker");
        }
        self.b.finish()
    }
}

/// Builds a `Par` whose read-shared tables are initialized by main *before*
/// the workers are forked (so the initializing writes happen-before every
/// worker read).
pub(crate) struct ParBuilder {
    b: TraceBuilder,
    next_var: u32,
}

impl ParBuilder {
    pub fn new() -> Self {
        ParBuilder {
            b: TraceBuilder::with_threads(1),
            next_var: 0,
        }
    }

    /// Allocates and initializes a read-shared table (main writes each
    /// entry once, pre-fork).
    pub fn shared_table(&mut self, n: u32) -> Vec<VarId> {
        let start = self.next_var;
        self.next_var += n;
        let vars: Vec<VarId> = (start..start + n).map(VarId::new).collect();
        for &v in &vars {
            self.b.write(Tid::new(0), v).expect("pre-fork init");
        }
        vars
    }

    /// Forks the workers and converts into a [`Par`] (subsequent var
    /// allocations continue after the tables).
    pub fn fork(mut self, workers: u32, seed: u64) -> Par {
        let main = Tid::new(0);
        let workers: Vec<Tid> = (1..=workers).map(Tid::new).collect();
        for &w in &workers {
            self.b.fork(main, w).expect("fork of fresh worker");
        }
        Par {
            b: self.b,
            rng: Prng::seed_from_u64(seed),
            main,
            workers,
            next_var: self.next_var,
            next_lock: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_trace::HbOracle;

    #[test]
    fn par_roundtrip_is_race_free() {
        let mut p = Par::new(3, 1);
        let locals: Vec<Vec<VarId>> = (0..3).map(|_| p.vars(4)).collect();
        for round in 0..10 {
            let t = p.workers[round % 3];
            let vars = locals[round % 3].clone();
            p.local_burst(t, &vars, 5, 0.3);
        }
        p.barrier();
        let trace = p.finish();
        assert!(HbOracle::analyze(&trace).is_race_free());
    }

    #[test]
    fn shared_table_reads_are_race_free() {
        let mut pb = ParBuilder::new();
        let table = pb.shared_table(8);
        let mut p = pb.fork(2, 3);
        let (w0, w1) = (p.workers[0], p.workers[1]);
        p.shared_reads(w0, &table, 20);
        p.shared_reads(w1, &table, 20);
        let trace = p.finish();
        assert!(HbOracle::analyze(&trace).is_race_free());
    }

    #[test]
    fn injected_races_are_real_and_exactly_one_var_each() {
        let mut p = Par::new(3, 7);
        let v1 = p.var();
        let v2 = p.var();
        let v3 = p.var();
        let m = p.lock();
        p.inject_write_write_race(v1);
        p.inject_write_read_race(v2);
        p.inject_unlocked_read_race(v3, m);
        let trace = p.finish();
        let report = HbOracle::analyze(&trace);
        assert_eq!(report.race_vars(), vec![v1, v2, v3]);
    }

    #[test]
    fn pick_two_workers_are_distinct() {
        let mut p = Par::new(4, 11);
        for _ in 0..100 {
            let (a, b) = p.pick_two_workers();
            assert_ne!(a, b);
        }
    }
}
