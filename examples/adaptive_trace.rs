//! The Figure 4 walkthrough: watch FastTrack adapt the representation of a
//! variable's read history — epoch → vector clock → (collapsed by a write)
//! → epoch again.
//!
//! ```text
//! cargo run --example adaptive_trace
//! ```

use fasttrack_suite::clock::Tid;
use fasttrack_suite::core::{Detector, FastTrack, ReadMode};
use fasttrack_suite::trace::{Op, VarId};

fn mode_name(m: ReadMode) -> &'static str {
    match m {
        ReadMode::Unread => "⊥e (no read history)",
        ReadMode::Epoch => "epoch (O(1) state)",
        ReadMode::Shared => "vector clock (read-shared)",
    }
}

fn main() {
    let (t0, t1) = (Tid::new(0), Tid::new(1));
    let x = VarId::new(0);

    // The Figure 4 trace. Comments give the paper's instrumentation state.
    let script: Vec<(Op, &str)> = vec![
        (Op::Write(t0, x), "W_x := 7@0 — write epoch recorded"),
        (Op::Fork(t0, t1), "fork(0,1)"),
        (Op::Read(t1, x), "R_x := 1@1 — [FT READ EXCLUSIVE]"),
        (
            Op::Read(t0, x),
            "R_x := <8,1> — [FT READ SHARE] inflates to a VC",
        ),
        (
            Op::Read(t1, x),
            "R_x[1] updated in place — [FT READ SHARED]",
        ),
        (Op::Join(t0, t1), "join(0,1)"),
        (
            Op::Write(t0, x),
            "R_x := ⊥e — [FT WRITE SHARED] collapses the VC",
        ),
        (Op::Read(t0, x), "R_x := 8@0 — epoch mode again"),
    ];

    let mut ft = FastTrack::new();
    println!(
        "{:<16} {:<28} read-history representation",
        "operation", "paper state"
    );
    for (i, (op, note)) in script.iter().enumerate() {
        ft.on_op(i, op);
        println!(
            "{:<16} {:<28} {}",
            op.to_string(),
            note,
            mode_name(ft.read_mode(x))
        );
    }

    assert!(ft.warnings().is_empty(), "the Figure 4 trace is race-free");
    println!("\nno races — and the expensive VC existed only while reads were concurrent");
}
