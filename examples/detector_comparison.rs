//! Run all seven detectors over one workload and compare precision and
//! cost — a miniature Table 1.
//!
//! ```text
//! cargo run --release --example detector_comparison [workload]
//! ```
//!
//! `workload` is any Table 1 benchmark name (default `hedc`, whose races
//! show off the precision differences).

use fasttrack_suite::detectors::{run_all, Detector};
use fasttrack_suite::workloads::{build, Scale, BENCHMARKS};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "hedc".to_string());
    assert!(
        BENCHMARKS.iter().any(|b| b.name == name),
        "unknown workload {name:?}; pick one of {:?}",
        BENCHMARKS.iter().map(|b| b.name).collect::<Vec<_>>()
    );

    let trace = build(&name, Scale { ops: 50_000 }, 42);
    println!(
        "workload {name}: {} events, {} threads, {} variables\n",
        trace.len(),
        trace.n_threads(),
        trace.n_vars()
    );

    let tools = run_all(&trace);
    println!(
        "{:<12} {:>9} {:>14} {:>12} {:>12}",
        "tool", "warnings", "VCs allocated", "VC ops", "shadow bytes"
    );
    for tool in &tools {
        println!(
            "{:<12} {:>9} {:>14} {:>12} {:>12}",
            tool.name(),
            tool.warnings().len(),
            tool.stats().vc_allocated,
            tool.stats().vc_ops,
            tool.shadow_bytes()
        );
    }

    println!("\nwarnings in detail:");
    for tool in &tools {
        if tool.warnings().is_empty() {
            continue;
        }
        println!("  {}:", tool.name());
        for w in tool.warnings() {
            println!("    {w}");
        }
    }
}
