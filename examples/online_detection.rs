//! Online race detection over real threads: monitored mutexes, tracked
//! variables, and a live FastTrack instance.
//!
//! ```text
//! cargo run --example online_detection
//! ```

use fasttrack_suite::core::FastTrack;
use fasttrack_suite::runtime::online::Monitor;

fn main() {
    // --- Scenario 1: a correctly locked shared counter. ---
    let monitor = Monitor::new(FastTrack::new());
    let counter = monitor.tracked_var(0u64);
    let lock = monitor.mutex(());
    let root = monitor.root();

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let counter = counter.clone();
            let lock = lock.clone();
            root.spawn(move |ctx| {
                for _ in 0..1_000 {
                    let _guard = lock.lock(&ctx);
                    let v = counter.get(&ctx);
                    counter.set(&ctx, v + 1);
                }
            })
        })
        .collect();
    for w in workers {
        w.join(&root);
    }
    let report = monitor.report();
    println!(
        "locked counter: value={} warnings={} ({} events analyzed)",
        counter.get(&root),
        report.warnings.len(),
        report.stats.ops
    );
    assert!(report.warnings.is_empty());

    // --- Scenario 2: the same counter without the lock. ---
    let monitor = Monitor::new(FastTrack::new());
    let counter = monitor.tracked_var(0u64);
    let root = monitor.root();
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let counter = counter.clone();
            root.spawn(move |ctx| {
                let v = counter.get(&ctx);
                counter.set(&ctx, v + 1);
            })
        })
        .collect();
    for w in workers {
        w.join(&root);
    }
    let report = monitor.report();
    println!("unlocked counter: warnings={}", report.warnings.len());
    for w in &report.warnings {
        println!("  {w}");
    }
    assert!(!report.warnings.is_empty(), "the race is detected online");

    // --- Scenario 3: barrier-phased workers are race-free. ---
    let monitor = Monitor::new(FastTrack::new());
    let left = monitor.tracked_var(0u64);
    let right = monitor.tracked_var(0u64);
    let barrier = monitor.barrier(2);
    let root = monitor.root();
    let child = {
        let (left, right, barrier) = (left.clone(), right.clone(), barrier.clone());
        root.spawn(move |ctx| {
            left.set(&ctx, 1);
            barrier.wait(&ctx);
            let _ = right.get(&ctx);
        })
    };
    right.set(&root, 2);
    barrier.wait(&root);
    let _ = left.get(&root);
    child.join(&root);
    let report = monitor.report();
    println!("barrier hand-off: warnings={}", report.warnings.len());
    assert!(report.warnings.is_empty());
}
