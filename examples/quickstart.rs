//! Quickstart: detect a data race in a hand-built trace, then fix it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fasttrack_suite::clock::Tid;
use fasttrack_suite::core::{Detector, FastTrack};
use fasttrack_suite::trace::{HbOracle, LockId, TraceBuilder, VarId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (alice, bob) = (Tid::new(0), Tid::new(1));
    let balance = VarId::new(0);
    let account_lock = LockId::new(0);

    // --- A racy program: Bob updates the balance without the lock. ---
    let mut b = TraceBuilder::with_threads(2);
    b.release_after_acquire(alice, account_lock, |b| {
        b.read(alice, balance)?;
        b.write(alice, balance)
    })?;
    b.read(bob, balance)?; // no lock!
    b.write(bob, balance)?;
    let racy_trace = b.finish();

    let mut detector = FastTrack::new();
    detector.run(&racy_trace);
    println!("racy program:");
    for warning in detector.warnings() {
        println!("  {warning}");
    }
    assert_eq!(detector.warnings().len(), 1);

    // FastTrack is precise: the happens-before oracle agrees exactly.
    let oracle = HbOracle::analyze(&racy_trace);
    assert_eq!(oracle.race_vars(), vec![balance]);

    // --- The fixed program: both threads hold the lock. ---
    let mut b = TraceBuilder::with_threads(2);
    b.release_after_acquire(alice, account_lock, |b| {
        b.read(alice, balance)?;
        b.write(alice, balance)
    })?;
    b.release_after_acquire(bob, account_lock, |b| {
        b.read(bob, balance)?;
        b.write(bob, balance)
    })?;
    let fixed_trace = b.finish();

    let mut detector = FastTrack::new();
    detector.run(&fixed_trace);
    println!("fixed program: {} warnings", detector.warnings().len());
    assert!(detector.warnings().is_empty());

    // The statistics show the O(1) fast paths doing the work.
    println!("analysis stats: {}", detector.stats());
    Ok(())
}
