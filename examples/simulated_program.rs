//! Script a multithreaded program on the deterministic simulator and check
//! every schedule seed for races — the "run your program under the
//! detector" workflow without real nondeterminism.
//!
//! ```text
//! cargo run --example simulated_program
//! ```

use fasttrack_suite::core::{Detector, FastTrack};
use fasttrack_suite::runtime::sim::{Program, Script};
use fasttrack_suite::trace::{LockId, VarId};

fn main() {
    let queue = VarId::new(0);
    let result = VarId::new(1);
    let m = LockId::new(0);

    // A producer/consumer over a condition variable: the consumer waits
    // until the producer publishes, then reads the payload.
    let mut program = Program::new();
    let consumer = program.add_thread(
        Script::new()
            .lock(m)
            .wait(m) // releases m, blocks until notified, re-acquires
            .read(queue)
            .unlock(m)
            .write(result)
            .build(),
    );
    program.main(
        Script::new()
            .fork(consumer)
            .lock(m)
            .write(queue)
            .notify_all(m)
            .unlock(m)
            .join(consumer)
            .read(result)
            .build(),
    );

    let mut race_free = 0;
    let mut deadlocks = 0;
    for seed in 0..64 {
        match program.run(seed) {
            Ok(trace) => {
                let mut ft = FastTrack::new();
                ft.run(&trace);
                assert!(
                    ft.warnings().is_empty(),
                    "seed {seed}: unexpected race {:?}",
                    ft.warnings()
                );
                race_free += 1;
            }
            Err(e) => {
                // If the consumer has not reached wait() when notify fires,
                // it waits forever — a real lost-wakeup bug this harness
                // surfaces as a deadlock. (Production code guards waits
                // with a predicate loop.)
                deadlocks += 1;
                if deadlocks == 1 {
                    println!("schedule bug found: {e}");
                }
            }
        }
    }
    println!("{race_free} race-free schedules, {deadlocks} lost-wakeup deadlocks out of 64 seeds");
    assert!(race_free > 0);
}
