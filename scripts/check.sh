#!/usr/bin/env bash
# Full local gate: build, tests, formatting, and a CLI observability smoke run.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> parallel engine agreement tests"
cargo test -q --test parallel_agreement

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> rustdoc (deny warnings) + doctests"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet
cargo test -q --doc --workspace

echo "==> bench binaries compile (feature-gated, no external deps)"
cargo build -p ft-bench --features criterion --benches

echo "==> CLI profile smoke"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --release -q -p ft-cli -- \
    generate --benchmark moldyn --ops 5000 -o "$tmp/moldyn.ftrace"
cargo run --release -q -p ft-cli -- \
    profile "$tmp/moldyn.ftrace" --shards 2 --metrics "$tmp/out.json"
python3 - "$tmp/out.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert any(k.startswith("rule.") and k.endswith(".percent")
           for k in doc["detector"]["gauges"]), "missing per-rule percentages"
assert any(".on_op_ns" in k for k in doc["pipeline"]["histograms"]), \
    "missing per-stage latency histograms"
assert "online.emit_ns" in doc["online_direct"]["histograms"], \
    "missing online overhead stats"
assert "online.queue_lag_ns" in doc["online_buffered"]["histograms"], \
    "missing buffered queue stats"
assert "parallel.batch_ns" in doc["parallel"]["histograms"], \
    "missing parallel engine batch stats"
print("profile smoke OK:", sys.argv[1])
EOF

echo "==> parallel engine smoke (2 shards, agreement sweep)"
cargo run --release -q -p ft-bench --bin parallel -- --ops=20000 --reps=1
python3 - BENCH_parallel.json <<'EOF'
import json
doc = json.load(open("BENCH_parallel.json"))
assert doc["divergences"] == 0, "parallel engine diverged from sequential"
assert doc["traces_checked"] >= 16, "agreement sweep did not cover the benchmarks"
print("parallel smoke OK:", doc["traces_checked"], "benchmarks, 0 divergences")
EOF

echo "==> guard degradation smoke (shrinking budgets, soundness sweep)"
cargo run --release -q -p ft-bench --bin guard -- --ops=20000 --reps=1
python3 - BENCH_guard.json <<'EOF'
import json
doc = json.load(open("BENCH_guard.json"))
assert doc["violations"] == 0, "guard degradation violated soundness"
rows = doc["rows"]
assert rows, "guard sweep produced no workloads"
for row in rows:
    for rung in row["budgets"]:
        assert rung["warnings_subset_of_baseline"], \
            f"{row['workload']}: fabricated warnings at {rung['budget_bytes']} B"
print("guard smoke OK:", len(rows), "workloads, 0 violations")
EOF

echo "==> all checks passed"
