#!/usr/bin/env bash
# Full local gate: build, tests, formatting, and a CLI observability smoke run.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> parallel engine agreement tests"
cargo test -q --test parallel_agreement

echo "==> ftb round-trip + streamed-analysis agreement tests"
cargo test -q --test stream_agreement
cargo test -q -p ft-clock --test inline_heap_agreement

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> rustdoc (deny warnings) + doctests"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet
cargo test -q --doc --workspace

echo "==> bench binaries compile (feature-gated, no external deps)"
cargo build -p ft-bench --features criterion --benches

echo "==> CLI profile smoke"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --release -q -p ft-cli -- \
    generate --benchmark moldyn --ops 5000 -o "$tmp/moldyn.ftrace"
cargo run --release -q -p ft-cli -- \
    profile "$tmp/moldyn.ftrace" --shards 2 --metrics "$tmp/out.json"
python3 - "$tmp/out.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert any(k.startswith("rule.") and k.endswith(".percent")
           for k in doc["detector"]["gauges"]), "missing per-rule percentages"
assert any(".on_op_ns" in k for k in doc["pipeline"]["histograms"]), \
    "missing per-stage latency histograms"
assert "online.emit_ns" in doc["online_direct"]["histograms"], \
    "missing online overhead stats"
assert "online.queue_lag_ns" in doc["online_buffered"]["histograms"], \
    "missing buffered queue stats"
assert "parallel.batch_ns" in doc["parallel"]["histograms"], \
    "missing parallel engine batch stats"
print("profile smoke OK:", sys.argv[1])
EOF

echo "==> CLI diagnostics smoke (report bundle + Prometheus exposition)"
cargo run --release -q -p ft-cli -- \
    generate --random --racy 0.3 --ops 5000 --seed 7 -o "$tmp/racy.ftrace"
cargo run --release -q -p ft-cli -- \
    report "$tmp/racy.ftrace" --recorder 8 -o "$tmp/bundle.json" > /dev/null
cargo run --release -q -p ft-cli -- \
    analyze "$tmp/racy.ftrace" --metrics-format prom > "$tmp/metrics.prom"
python3 - "$tmp/bundle.json" "$tmp/metrics.prom" <<'EOF'
import json, re, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "ftrace.report/1", "unknown bundle schema"
assert doc["warnings"], "racy workload produced no warnings"
rules = {r["rule"] for r in doc["rule_breakdown"] if r["hits"] > 0}
for w in doc["warnings"]:
    p = w["provenance"]
    assert p is not None, f"warning without provenance: {w}"
    assert p["rule"] in rules, f"provenance rule {p['rule']} not counted"
    assert p["recent"], "flight recorder drained no events"
    for tail in p["recent"]:
        assert 0 < len(tail["events"]) <= 8, "tail violates ring capacity"
assert doc["recorder"]["capacity"] == 8
assert doc["tiers"]["total"] > 0, "tier counters empty"
assert "ftrace_tier_governed_hits" in doc["metrics_prom"], \
    "bundle missing embedded Prometheus text"
# Validate the standalone exposition: every sample line must be
# `name[{labels}] value` with a legal metric name, and the per-tier
# counters must be present.
name_re = re.compile(r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+$')
text = open(sys.argv[2]).read()
samples = [l for l in text.splitlines() if l and not l.startswith("#")]
assert samples, "empty Prometheus exposition"
for line in samples:
    assert name_re.match(line), f"invalid exposition line: {line!r}"
    float(line.rsplit(" ", 1)[1])
assert any(l.startswith("ftrace_tier_") for l in samples), \
    "per-tier counters missing from Prometheus output"
assert any(l.startswith("ftrace_rule_") for l in samples), \
    "per-rule counters missing from Prometheus output"
print("diagnostics smoke OK: %d warning(s), %d prom sample(s)"
      % (len(doc["warnings"]), len(samples)))
EOF
# Keep the validated bundle + scrape at stable paths so CI can upload them
# as artifacts (the temp dir is removed on exit). Generated outputs live
# under results/ so smoke runs never dirty the tree.
mkdir -p results
cp "$tmp/bundle.json" results/diagnostics_bundle.json
cp "$tmp/metrics.prom" results/diagnostics_metrics.prom

echo "==> CLI ftb round-trip smoke (record -> convert -> analyze agree)"
cargo run --release -q -p ft-cli -- \
    trace record --benchmark tsp --ops 5000 -o "$tmp/tsp.ftb"
cargo run --release -q -p ft-cli -- \
    trace convert "$tmp/tsp.ftb" -o "$tmp/tsp.ftrace"
cargo run --release -q -p ft-cli -- \
    analyze "$tmp/tsp.ftb" --format ftb | grep -v '^streamed' > "$tmp/ftb.txt"
cargo run --release -q -p ft-cli -- \
    analyze "$tmp/tsp.ftrace" --format json > "$tmp/json.txt"
diff "$tmp/ftb.txt" "$tmp/json.txt"
echo "ftb smoke OK: streamed and materialized analyses agree"

echo "==> throughput smoke (events/sec per engine vs pre-change baseline)"
cargo run --release -q -p ft-bench --bin throughput -- --ops=20000 --reps=1
python3 - BENCH_throughput.json <<'EOF'
import json
doc = json.load(open("BENCH_throughput.json"))
agg = doc["aggregate"]
assert agg["events"] > 0, "throughput bench measured nothing"
# The >=1.5x acceptance number is recorded at full scale; the smoke run
# only insists the fused engine is not slower than the old architecture.
assert agg["speedup_vs_baseline"] > 1.0, \
    "fused engine slower than the pre-change baseline"
rec = doc["recorder"]
assert rec["capacity"] > 0, "recorder section missing from aggregate"
assert "enabled_overhead_pct" in rec and "disabled_within_2pct" in rec, \
    "recorder overhead fields missing"
print("throughput smoke OK: %.2fx vs baseline, recorder overhead %+.1f%%"
      % (agg["speedup_vs_baseline"], rec["enabled_overhead_pct"]))
EOF

echo "==> parallel engine smoke (2 shards, agreement sweep + speedup gate)"
cargo run --release -q -p ft-bench --bin parallel -- --ops=20000 --reps=1
python3 - BENCH_parallel.json <<'EOF'
import json
doc = json.load(open("BENCH_parallel.json"))
assert doc["divergences"] == 0, "parallel engine diverged from sequential"
assert doc["traces_checked"] >= 16, "agreement sweep did not cover the benchmarks"
# Speedup gate: on a multi-core host, 2 shards must beat sequential on
# average; a single-core host cannot show wall-clock speedup (coordinator
# and workers serialize), so the bench marks the gate skipped there.
gate = doc["speedup_gate"]
cores = doc["available_parallelism"]
w2 = doc["mean_speedup"]["w2"]
if gate == "skipped_single_core":
    assert cores < 2, "gate skipped on a multi-core host"
    print("parallel speedup gate SKIPPED (available_parallelism=%d, "
          "mean w2 speedup %.2fx informational)" % (cores, w2))
else:
    assert gate == "passed", \
        "2-shard engine slower than sequential on a %d-core host " \
        "(mean speedup %.2fx)" % (cores, w2)
    print("parallel speedup gate OK: %.2fx at 2 shards on %d cores"
          % (w2, cores))
print("parallel smoke OK:", doc["traces_checked"], "benchmarks, 0 divergences")
EOF

echo "==> serve smoke (multi-tenant daemon: two concurrent clients, metrics, SIGTERM)"
cargo run --release -q -p ft-cli -- \
    trace record --random --racy 0.3 --ops 5000 --seed 9 -o "$tmp/alpha.ftb"
cargo run --release -q -p ft-cli -- \
    trace record --random --racy 0.3 --ops 5000 --seed 10 -o "$tmp/beta.ftb"
cargo run --release -q -p ft-cli -- \
    serve --addr 127.0.0.1:0 --mem-budget $((8 << 20)) > "$tmp/serve.log" 2>&1 &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 100); do
    serve_addr="$(sed -n 's/^ftrace serve: listening on //p' "$tmp/serve.log")"
    [ -n "$serve_addr" ] && break
    sleep 0.1
done
if [ -z "$serve_addr" ]; then
    echo "serve smoke FAILED: daemon never reported its address"
    cat "$tmp/serve.log"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
# Two tenants upload concurrently with ragged chunk sizes so their frames
# interleave on the daemon side.
cargo run --release -q -p ft-cli -- \
    client upload "$tmp/alpha.ftb" --addr "$serve_addr" --tenant alpha \
    --chunk 4096 > "$tmp/report_alpha.json" 2> /dev/null &
alpha_pid=$!
cargo run --release -q -p ft-cli -- \
    client upload "$tmp/beta.ftb" --addr "$serve_addr" --tenant beta \
    --chunk 1536 > "$tmp/report_beta.json" 2> /dev/null &
beta_pid=$!
wait "$alpha_pid" "$beta_pid"
cargo run --release -q -p ft-cli -- \
    client metrics --addr "$serve_addr" > "$tmp/serve.prom"
python3 - "$tmp/report_alpha.json" "$tmp/report_beta.json" "$tmp/serve.prom" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
for doc, tenant in ((a, "alpha"), (b, "beta")):
    assert doc["schema"] == "ftrace.serve.report/1", "unknown report schema"
    assert doc["tenant"] == tenant, f"tenant mislabeled: {doc['tenant']}"
    # The generator rounds --ops up to whole structures, so >= not ==.
    assert doc["events"] >= 5000, "events lost in flight"
    assert doc["dropped_events"] == 0, "Block policy must never shed"
    assert doc["warnings"], f"racy upload for {tenant} produced no warnings"
    assert doc["precision"] == "full", doc["precision"]
# Isolation: different traces through concurrent sessions must keep their
# own warning sets — shared shadow state would bleed one into the other.
assert a["warnings"] != b["warnings"], "tenants share warning state"
assert a["session"] != b["session"], "sessions share an id"
prom = open(sys.argv[3]).read().splitlines()
samples = {l.split(" ")[0]: l.split(" ")[1] for l in prom
           if l and not l.startswith("#")}
assert samples["ftrace_serve_sessions_opened"] == "2", samples
assert samples["ftrace_serve_sessions_closed"] == "2", samples
assert samples["ftrace_serve_sessions_live"] == "0", samples
assert int(samples["ftrace_serve_events_total"]) == a["events"] + b["events"], samples
print("serve smoke OK: 2 isolated tenants, %s + %s warning(s), metrics scraped"
      % (len(a["warnings"]), len(b["warnings"])))
EOF
# SIGTERM has the default disposition (the daemon is pure-std and installs
# no handlers), so 143 is the expected exit; the in-band graceful path
# (SHUTDOWN frame -> exit 0) is exercised by the ft-serve integration tests.
kill -TERM "$serve_pid"
serve_rc=0
wait "$serve_pid" || serve_rc=$?
if [ "$serve_rc" -ne 143 ] && [ "$serve_rc" -ne 0 ]; then
    echo "serve smoke FAILED: daemon exited $serve_rc after SIGTERM"
    cat "$tmp/serve.log"
    exit 1
fi
if cargo run --release -q -p ft-cli -- client metrics --addr "$serve_addr" \
    > /dev/null 2>&1; then
    echo "serve smoke FAILED: daemon still answering after SIGTERM"
    exit 1
fi
echo "serve shutdown OK: SIGTERM exit $serve_rc, port released"

echo "==> serve load bench (concurrent tenants, isolation oracle per report)"
cargo run --release -q -p ft-bench --bin serve_load -- \
    --tenants=4 --sessions=2 --ops=20000
python3 - BENCH_serve.json <<'EOF'
import json
doc = json.load(open("BENCH_serve.json"))
assert doc["tenants"] >= 4, "load bench must drive >= 4 concurrent tenants"
assert doc["isolation_violations"] == 0, "multi-tenant report diverged"
assert doc["sessions_total"] == doc["server_sessions_closed"], \
    "daemon closed a different number of sessions than clients opened"
assert doc["sessions_per_sec"] > 0 and doc["aggregate_mops"] > 0
assert doc["report_latency_p99_ms"] >= doc["report_latency_p50_ms"]
print("serve load OK: %.1f sessions/s, %.1f Mop/s aggregate, p99 %.1f ms"
      % (doc["sessions_per_sec"], doc["aggregate_mops"],
         doc["report_latency_p99_ms"]))
EOF

echo "==> guard degradation smoke (shrinking budgets, soundness sweep)"
cargo run --release -q -p ft-bench --bin guard -- --ops=20000 --reps=1
python3 - BENCH_guard.json <<'EOF'
import json
doc = json.load(open("BENCH_guard.json"))
assert doc["violations"] == 0, "guard degradation violated soundness"
rows = doc["rows"]
assert rows, "guard sweep produced no workloads"
for row in rows:
    for rung in row["budgets"]:
        assert rung["warnings_subset_of_baseline"], \
            f"{row['workload']}: fabricated warnings at {rung['budget_bytes']} B"
print("guard smoke OK:", len(rows), "workloads, 0 violations")
EOF

echo "==> sampling tier smoke (sampler soundness + recall at full admission)"
# Full admission rate so recall on racy workloads is deterministic and
# non-zero — the default 0.001 rate is an overhead setting, not a smoke
# setting. The bench itself exits nonzero on any fabricated race.
cargo run --release -q -p ft-bench --bin sampling -- --ops=20000 --reps=1 --rate=1.0
python3 - BENCH_sampling.json <<'EOF'
import json
doc = json.load(open("BENCH_sampling.json"))
assert doc["violations"] == 0, "sampler fabricated a race"
# On a racy workload (tsp ships a deliberate benign-race idiom), the
# sampler at full admission must catch races at two different budgets.
rows = {r["workload"]: r for r in doc["rows"]}
racy = [r for r in doc["rows"] if r["fasttrack_race_vars"] > 0]
assert racy, "no workload produced a FastTrack race at smoke scale"
row = rows.get("tsp", racy[0])
checked = 0
for rung in row["budgets"]:
    if rung["escalation"] or rung["budget"] not in (4, 16):
        continue
    checked += 1
    assert rung["sound"], f"{row['workload']}: unsound at budget {rung['budget']}"
    assert rung.get("recall_pct", 0) > 0, \
        f"{row['workload']}: zero recall at rate 1.0, budget {rung['budget']}"
print("sampling smoke OK: %s recall > 0 at %d budgets, 0 violations"
      % (row["workload"], checked))
EOF

echo "==> sync fast-lane smoke (O(1) acquire/release epochs, zero divergence)"
# Small ops keep the smoke fast; the >=1.3x sweep speedup is a full-scale
# acceptance number (machine-sensitive), so the smoke gates on semantics
# (bit-identical warnings everywhere) and on the fast lane actually firing.
cargo run --release -q -p ft-bench --bin sync -- --ops=20000 --reps=1
python3 - BENCH_sync.json <<'EOF'
import json
doc = json.load(open("BENCH_sync.json"))
assert doc["divergences"] == 0, "sync fast lane changed a warning"
rows = doc["sync_dense"]
assert rows, "sync-dense sweep produced no workloads"
hits = sum(r["fastpath_hits"] for r in rows)
assert hits > 0, "sync fast path never fired on the sync-dense sweep"
for r in rows:
    assert r["warnings_identical"], f"{r['workload']}: fused != ablated warnings"
    assert 0.0 <= r["fastpath_hit_rate"] <= 1.0, r
for r in doc["floor"]:
    assert r["fasttrack_warnings_identical"], f"{r['workload']}: core diverged"
    assert r["sampler_warnings_identical"], f"{r['workload']}: sampler diverged"
rate = hits / max(1, hits + sum(r["slow_joins"] for r in rows))
print("sync smoke OK: %d fast-path hits (%.0f%% hit rate), 0 divergences"
      % (hits, 100.0 * rate))
EOF

echo "==> sync fast-lane agreement property suite"
cargo test -q --release --test sync_fastpath_agreement

echo "==> all checks passed"
