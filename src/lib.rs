//! Umbrella crate for the FastTrack reproduction.
//!
//! Re-exports every piece of the workspace under one roof so examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! * [`obs`] — dependency-free metrics registry, histograms, and span
//!   tracing (`ft-obs`);
//! * [`clock`] — epochs and vector clocks (`ft-clock`);
//! * [`trace`] — the trace model, feasibility checking, happens-before
//!   oracle, and generators (`ft-trace`);
//! * [`core`] — the FastTrack analysis and the shared `Detector` trait
//!   (`fasttrack`);
//! * [`detectors`] — the comparison tools: Eraser, BasicVC, DJIT⁺,
//!   MultiRace, Goldilocks (`ft-detectors`);
//! * [`runtime`] — pipelines/prefilters, granularity adapters, the program
//!   simulator, and online monitoring (`ft-runtime`);
//! * [`sampler`] — the O(1)-samples low-overhead detector tier
//!   (`ft-sampler`);
//! * [`serve`] — the multi-tenant race-detection daemon and its framed
//!   client (`ft-serve`);
//! * [`checkers`] — Atomizer, Velodrome, SingleTrack (`ft-checkers`);
//! * [`workloads`] — the paper's 16 benchmarks and the Eclipse-like
//!   workload (`ft-workloads`).
//!
//! See the repository README for a tour and `DESIGN.md` for the mapping
//! from the paper's systems and experiments to these modules.

#![forbid(unsafe_code)]

#[doc(inline)]
pub use fasttrack as core;
pub use ft_checkers as checkers;
pub use ft_clock as clock;
pub use ft_detectors as detectors;
pub use ft_obs as obs;
pub use ft_runtime as runtime;
pub use ft_sampler as sampler;
pub use ft_serve as serve;
pub use ft_trace as trace;
pub use ft_workloads as workloads;
