//! Fast, deterministic regression tests for the *shape* of every evaluation
//! result — the table/figure claims at test scale (the `--release` harness
//! binaries produce the full-size numbers).

use fasttrack_suite::core::{Detector, FastTrack};
use fasttrack_suite::detectors::{BasicVc, Djit, Eraser, Goldilocks, MultiRace};
use fasttrack_suite::runtime::coarsen;
use fasttrack_suite::trace::OpMix;
use fasttrack_suite::workloads::eclipse::{self, EclipseOp};
use fasttrack_suite::workloads::{build, Scale, BENCHMARKS};

fn scale() -> Scale {
    Scale { ops: 12_000 }
}

/// Table 1, warnings columns: the precise tools agree; Eraser reports both
/// spurious warnings and misses.
#[test]
fn table1_warning_shape() {
    let mut ft_total = 0usize;
    let mut eraser_total = 0usize;
    let mut eraser_spurious = 0usize;
    let mut eraser_missed = 0usize;
    for bench in BENCHMARKS {
        let trace = build(bench.name, scale(), 0);
        let mut ft = FastTrack::new();
        ft.run(&trace);
        let mut dj = Djit::new();
        dj.run(&trace);
        let mut bv = BasicVc::new();
        bv.run(&trace);
        let mut er = Eraser::new();
        er.run(&trace);

        // BASICVC and DJIT+ "reported exactly the same race conditions".
        let vars = |d: &dyn Detector| {
            let mut v: Vec<_> = d.warnings().iter().map(|w| w.var).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        assert_eq!(vars(&ft), vars(&dj), "{}", bench.name);
        assert_eq!(vars(&ft), vars(&bv), "{}", bench.name);
        assert_eq!(ft.warnings().len(), bench.expected_races, "{}", bench.name);

        ft_total += ft.warnings().len();
        eraser_total += er.warnings().len();
        let ft_vars = vars(&ft);
        for v in vars(&er) {
            if !ft_vars.contains(&v) {
                eraser_spurious += 1;
            }
        }
        for v in &ft_vars {
            if !vars(&er).contains(v) {
                eraser_missed += 1;
            }
        }
    }
    assert_eq!(ft_total, 8, "the paper's eight FastTrack warnings");
    assert!(
        eraser_total > ft_total,
        "Eraser reports more warnings overall ({eraser_total} vs {ft_total})"
    );
    assert!(
        eraser_spurious >= 10,
        "spurious Eraser reports: {eraser_spurious}"
    );
    assert!(
        eraser_missed >= 4,
        "Eraser misses real races: {eraser_missed}"
    );
}

/// Table 2: orders of magnitude fewer VC allocations and O(n) VC ops.
#[test]
fn table2_vc_shape() {
    let mut djit_alloc = 0u64;
    let mut ft_alloc = 0u64;
    let mut djit_ops = 0u64;
    let mut ft_ops = 0u64;
    for bench in BENCHMARKS {
        let trace = build(bench.name, scale(), 0);
        let mut dj = Djit::new();
        dj.run(&trace);
        let mut ft = FastTrack::new();
        ft.run(&trace);
        djit_alloc += dj.stats().vc_allocated;
        ft_alloc += ft.stats().vc_allocated;
        djit_ops += dj.stats().vc_ops;
        ft_ops += ft.stats().vc_ops;
    }
    assert!(
        djit_alloc > 15 * ft_alloc,
        "allocations: DJIT+ {djit_alloc} vs FT {ft_alloc}"
    );
    assert!(
        djit_ops > 3 * ft_ops,
        "VC ops: DJIT+ {djit_ops} vs FT {ft_ops}"
    );
}

/// Table 3: FastTrack's shadow memory is well below DJIT+'s at fine grain;
/// coarse grain shrinks both.
#[test]
fn table3_memory_shape() {
    let mut checked = 0;
    for bench in BENCHMARKS.iter().filter(|b| b.compute_bound) {
        let fine = build(bench.name, scale(), 0);
        let coarse = coarsen(&fine);
        let shadow = |trace| {
            let mut dj = Djit::new();
            dj.run(trace);
            let mut ft = FastTrack::new();
            ft.run(trace);
            (dj.shadow_bytes(), ft.shadow_bytes())
        };
        let (dj_fine, ft_fine) = shadow(&fine);
        let (dj_coarse, ft_coarse) = shadow(&coarse);
        assert!(
            2 * ft_fine < dj_fine,
            "{}: FT fine {ft_fine} vs DJIT+ fine {dj_fine}",
            bench.name
        );
        assert!(dj_coarse < dj_fine, "{}", bench.name);
        assert!(ft_coarse <= ft_fine, "{}", bench.name);
        checked += 1;
    }
    assert!(checked >= 10);
}

/// Figure 2: aggregate op mix is read-heavy and the constant-time fast
/// paths dominate.
#[test]
fn figure2_mix_shape() {
    let mut mix = OpMix::default();
    let mut fast_hits = 0u64;
    let mut accesses = 0u64;
    for bench in BENCHMARKS {
        let trace = build(bench.name, scale(), 0);
        mix = mix + trace.op_mix();
        let mut ft = FastTrack::new();
        ft.run(&trace);
        for rule in ft.rule_breakdown() {
            if rule.rule != "FT READ SHARE" && rule.rule != "FT WRITE SHARED" {
                fast_hits += rule.hits;
            }
        }
        accesses += ft.stats().reads + ft.stats().writes;
    }
    let ratios = mix.ratios();
    assert!(ratios.reads_pct > 70.0, "{ratios}");
    assert!(ratios.writes_pct < 25.0, "{ratios}");
    assert!(ratios.other_pct < 10.0, "{ratios}");
    let fast_pct = 100.0 * fast_hits as f64 / accesses as f64;
    assert!(
        fast_pct > 96.0,
        "fast paths cover {fast_pct:.2}% (paper: >96%)"
    );
}

/// §5.3: Eclipse warnings — FastTrack 30 real races, Eraser an order of
/// magnitude more reports, DJIT+ agrees with FastTrack.
#[test]
fn eclipse_warning_shape() {
    let mut ft_total = 0usize;
    let mut dj_total = 0usize;
    let mut er_total = 0usize;
    for op in EclipseOp::ALL {
        let trace = eclipse::build(op, scale(), 7);
        let mut ft = FastTrack::new();
        ft.run(&trace);
        let mut dj = Djit::new();
        dj.run(&trace);
        let mut er = Eraser::new();
        er.run(&trace);
        ft_total += ft.warnings().len();
        dj_total += dj.warnings().len();
        er_total += er.warnings().len();
    }
    assert_eq!(ft_total, 30);
    assert_eq!(dj_total, 30);
    assert!(er_total >= 600, "Eraser reported only {er_total}");
}

/// MultiRace performs far fewer VC comparisons than DJIT+ (its design
/// goal), while Goldilocks does none at all.
#[test]
fn hybrid_tools_cost_shape() {
    let trace = build("moldyn", scale(), 0);
    let mut dj = Djit::new();
    dj.run(&trace);
    let mut mr = MultiRace::new();
    mr.run(&trace);
    let mut gl = Goldilocks::new();
    gl.run(&trace);
    assert!(
        mr.stats().vc_ops < dj.stats().vc_ops / 2,
        "MultiRace {} vs DJIT+ {}",
        mr.stats().vc_ops,
        dj.stats().vc_ops
    );
    assert!(gl.transfer_ops() > 0);
}
