//! Property tests for the ft-guard bounded-memory degradation ladder.
//!
//! The contract under test (see `docs/OPERATIONS.md`):
//!
//! * an **unlimited** budget (`mem_budget = 0`) is a strict no-op — the
//!   governed detector produces bit-identical warnings and statistics to
//!   the ungoverned one on every trace;
//! * a **finite** budget may only *lose* races, never invent them: the
//!   racy variables reported under any budget are a subset of the
//!   ungoverned detector's, and whenever the budget actually bit (peak
//!   usage above the limit) the run carries a non-empty degradation
//!   record — degradation is loud, never silent;
//! * the same subset property holds for the block-parallel engine
//!   with a guarded per-shard configuration;
//! * the online monitor under injected faults (lane overflow + analysis
//!   panic) terminates and accounts for every event it did not analyze.

use std::collections::BTreeSet;

use fasttrack_suite::clock::Tid;
use fasttrack_suite::core::{Detector, FastTrack, FastTrackConfig, GuardConfig, Precision};
use fasttrack_suite::runtime::online::{FaultPlan, Monitor, MonitorConfig};
use fasttrack_suite::runtime::{analyze_parallel, ParallelConfig};
use fasttrack_suite::trace::gen::{self, GenConfig};
use fasttrack_suite::trace::{Op, Trace, VarId};

fn governed(trace: &Trace, budget: usize) -> FastTrack {
    let mut ft = FastTrack::with_config(FastTrackConfig {
        guard: Some(GuardConfig::with_budget(budget)),
        ..FastTrackConfig::default()
    });
    ft.run(trace);
    ft
}

fn ungoverned(trace: &Trace) -> FastTrack {
    let mut ft = FastTrack::new();
    ft.run(trace);
    ft
}

fn warning_vars(ft: &FastTrack) -> BTreeSet<VarId> {
    ft.warnings().iter().map(|w| w.var).collect()
}

fn racy_traces(n: u64) -> impl Iterator<Item = Trace> {
    (0..n).map(|seed| {
        gen::generate(
            &GenConfig {
                ops: 1_200,
                ..GenConfig::default().with_races(0.08)
            },
            seed,
        )
    })
}

/// Unlimited budget ⇒ the guard is pure bookkeeping: warnings and stats
/// are bit-identical to the ungoverned detector, and precision stays Full.
#[test]
fn unlimited_budget_is_bit_identical() {
    for trace in racy_traces(60) {
        let base = ungoverned(&trace);
        let gov = governed(&trace, 0);
        assert_eq!(gov.warnings(), base.warnings());
        assert_eq!(gov.stats(), base.stats());
        assert!(matches!(gov.precision(), Precision::Full));
    }
}

/// Finite budgets may miss races but never fabricate them, and a budget
/// that actually bit must leave a degradation record.
#[test]
fn finite_budget_warnings_are_a_sound_subset() {
    let mut degraded_runs = 0u64;
    for trace in racy_traces(60) {
        let base = ungoverned(&trace);
        let base_vars = warning_vars(&base);
        for budget in [4096usize, 1024, 256] {
            let gov = governed(&trace, budget);
            let gov_vars = warning_vars(&gov);
            assert!(
                gov_vars.is_subset(&base_vars),
                "budget {budget}: fabricated warnings {:?} vs {:?}",
                gov_vars,
                base_vars
            );
            let peak = gov.shadow_budget().expect("guard configured").peak();
            if peak > budget {
                // The budget bit: degradation must be recorded, loudly.
                let record = gov
                    .precision()
                    .record()
                    .cloned()
                    .expect("over-budget run must report Degraded{...}");
                assert!(
                    record.rvc_evictions > 0
                        || record.sampled_out > 0
                        || record.pool_clocks_dropped > 0,
                    "budget {budget}: empty degradation record at peak {peak}"
                );
                degraded_runs += 1;
            }
        }
    }
    assert!(
        degraded_runs > 0,
        "the sweep never actually degraded; budgets are too generous to test anything"
    );
}

/// The parallel engine under a guarded configuration keeps the same
/// subset property, and its merged precision reflects the shards' records.
#[test]
fn parallel_guarded_warnings_are_a_subset() {
    for trace in racy_traces(20) {
        let base_vars = warning_vars(&ungoverned(&trace));
        for shards in [2usize, 4] {
            let config = ParallelConfig {
                shards,
                detector: FastTrackConfig {
                    guard: Some(GuardConfig::with_budget(1024)),
                    ..FastTrackConfig::default()
                },
                ..ParallelConfig::default()
            };
            let report = analyze_parallel(&trace, &config);
            let par_vars: BTreeSet<VarId> = report.warnings.iter().map(|w| w.var).collect();
            assert!(
                par_vars.is_subset(&base_vars),
                "{shards} shard(s): fabricated warnings {:?} vs {:?}",
                par_vars,
                base_vars
            );
        }
    }
}

/// Fault-injection smoke: a tiny overflowing lane plus an injected
/// analysis panic must neither deadlock nor lose events silently —
/// everything emitted is either analyzed, counted as dropped, or counted
/// as skipped by panic recovery.
#[test]
fn fault_smoke_accounts_for_every_event() {
    let config = MonitorConfig {
        faults: FaultPlan::parse("11:overflow@48,slow@6,panic@40").unwrap(),
        ..MonitorConfig::default()
    };
    let monitor = Monitor::buffered_with(FastTrack::new(), config);
    const EMITTED: u64 = 1_000;
    for i in 0..EMITTED {
        monitor.emit_raw(Op::Write(Tid::new(0), VarId::new((i % 7) as u32)));
    }
    let report = monitor.report();
    let skipped = report.metrics.counter("online.ops_skipped").unwrap_or(0);
    assert_eq!(
        report.stats.writes + report.dropped_events + skipped,
        EMITTED,
        "events must be analyzed, dropped (counted), or skipped (counted)"
    );
    assert!(report.dropped_events > 0, "a 48-slot lane must overflow");
}
