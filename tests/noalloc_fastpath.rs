//! Verifies the ft-obs hot-path guarantee: with tracing disabled, `span!` /
//! `event!` are branch-only and `Histogram::record` never allocates.
//!
//! This lives in its own integration-test binary so the counting global
//! allocator observes only this file's single test (the libtest harness
//! itself allocates, so the measured window is confined to the loop below).

use fasttrack_suite::obs::{span, Histogram};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_spans_and_histogram_records_do_not_allocate() {
    // Warm up: the first histogram is built outside the measured window.
    let mut h = Histogram::new();
    h.record(1);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        // Tracing is disabled (never enabled in this binary): the field
        // expressions must not be evaluated, so no String is built.
        let _g = span!("hot", op = format!("op{i}"));
        h.record(i);
        h.record(u64::MAX - i);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled span! or Histogram::record allocated"
    );
    assert_eq!(h.count(), 20_001);
}
