//! End-to-end checks of the ft-obs observability wiring: detector metrics
//! snapshots, pipeline per-stage instrumentation, online-monitor overhead
//! reporting, and the JSON snapshot format round-tripping through the
//! workspace's own JSON parser.

use fasttrack_suite::core::{Detector, Empty, FastTrack};
use fasttrack_suite::obs::{JsonlSink, MetricsRegistry};
use fasttrack_suite::runtime::online::Monitor;
use fasttrack_suite::runtime::{run_pipeline, Pipeline};
use fasttrack_suite::trace::gen::{self, GenConfig};
use fasttrack_suite::trace::json as ftjson;

#[test]
fn pipeline_over_race_free_trace_suppresses_and_is_monotone() {
    let trace = gen::generate(&GenConfig::race_free(), 11);
    let mut p = Pipeline::new(vec![Box::new(FastTrack::new()), Box::new(Empty::new())]);
    run_pipeline(&mut p, &trace);
    let reports = p.stage_reports();

    // The prefilter suppressed something on a race-free workload...
    assert!(reports[0].events_suppressed > 0);
    assert!(reports[0].suppression_rate > 0.0);
    // ...and events_seen is monotone non-increasing down the chain.
    assert!(reports[1].events_seen <= reports[0].events_seen);
    assert_eq!(reports[0].events_seen, trace.len() as u64);
    assert_eq!(
        reports[1].events_seen,
        reports[0].events_seen - reports[0].events_suppressed
    );
    // Latency histograms saw exactly the events each stage received.
    assert_eq!(reports[0].latency.count, reports[0].events_seen);
    assert_eq!(reports[1].latency.count, reports[1].events_seen);
}

#[test]
fn detector_metrics_bridge_stats_and_rules() {
    let trace = gen::generate(&GenConfig::default(), 5);
    let mut ft = FastTrack::new();
    ft.run(&trace);
    let snap = ft.metrics();
    assert_eq!(snap.meta("tool"), Some("FASTTRACK"));
    assert_eq!(snap.counter("ops"), Some(ft.stats().ops));
    assert_eq!(snap.counter("reads"), Some(ft.stats().reads));
    assert_eq!(snap.counter("warnings"), Some(ft.warnings().len() as u64));
    // Per-rule counters + percentage gauges for every breakdown entry.
    for rc in ft.rule_breakdown() {
        assert_eq!(
            snap.counter(&format!("rule.{}.hits", rc.rule)),
            Some(rc.hits)
        );
        let pct = snap
            .gauge(&format!("rule.{}.percent", rc.rule))
            .expect("percent gauge");
        assert!((pct - rc.percent).abs() < 1e-9);
    }
}

/// The hand-rolled JSON snapshot writer produces documents the workspace's
/// own parser accepts, with every counter/gauge/histogram intact.
#[test]
fn snapshot_json_round_trips_through_the_trace_parser() {
    let trace = gen::generate(&GenConfig::default(), 9);
    let mut p = Pipeline::new(vec![Box::new(FastTrack::new()), Box::new(Empty::new())]);
    run_pipeline(&mut p, &trace);
    let snap = p.metrics_snapshot();
    let parsed = ftjson::parse(&snap.to_json()).expect("snapshot JSON parses");

    let counters = parsed.get("counters").expect("counters object");
    for (name, value) in &snap.counters {
        let got = counters.get(name).and_then(|v| v.as_f64()).unwrap();
        assert_eq!(got as u64, *value, "{name}");
    }
    let gauges = parsed.get("gauges").expect("gauges object");
    for (name, value) in &snap.gauges {
        let got = gauges.get(name).and_then(|v| v.as_f64()).unwrap();
        assert!((got - value).abs() < 1e-9, "{name}");
    }
    let histograms = parsed.get("histograms").expect("histograms object");
    for (name, summary) in &snap.histograms {
        let h = histograms.get(name).unwrap_or_else(|| panic!("{name}"));
        assert_eq!(
            h.get("count").and_then(|v| v.as_f64()).unwrap() as u64,
            summary.count
        );
        assert_eq!(
            h.get("p50").and_then(|v| v.as_f64()).unwrap() as u64,
            summary.p50
        );
        assert_eq!(
            h.get("max").and_then(|v| v.as_f64()).unwrap() as u64,
            summary.max
        );
    }
}

#[test]
fn online_monitor_replay_reports_overhead_in_both_modes() {
    let trace = gen::generate(&GenConfig::race_free(), 21);
    for make in [
        Monitor::new::<FastTrack> as fn(FastTrack) -> Monitor,
        Monitor::buffered,
    ] {
        let monitor = make(FastTrack::new());
        for op in trace.events() {
            monitor.emit_raw(op.clone());
        }
        let report = monitor.report();
        assert!(report.warnings.is_empty());
        assert_eq!(report.stats.ops, trace.len() as u64);
        let emit = report.metrics.histogram("online.emit_ns").expect("emit_ns");
        assert_eq!(emit.count, trace.len() as u64);
    }
}

#[test]
fn registry_merge_collects_worker_thread_metrics() {
    // The cross-thread aggregation pattern: each worker keeps its own
    // registry, the owner merges them afterwards.
    let handles: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut reg = MetricsRegistry::new();
                for i in 0..100u64 {
                    reg.inc_counter("events", 1);
                    reg.record("latency_ns", i * (w + 1));
                }
                reg
            })
        })
        .collect();
    let mut total = MetricsRegistry::new();
    for h in handles {
        total.merge(&h.join().unwrap());
    }
    let snap = total.snapshot();
    assert_eq!(snap.counter("events"), Some(400));
    assert_eq!(snap.histogram("latency_ns").unwrap().count, 400);
}

#[test]
fn jsonl_sink_records_cli_style_spans() {
    // Drive a span through a JSONL sink and parse each emitted line.
    let buf: std::sync::Arc<std::sync::Mutex<Vec<u8>>> = Default::default();

    struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for Shared {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fasttrack_suite::obs::set_sink(Box::new(JsonlSink::new(Box::new(Shared(buf.clone())))));
    {
        let _g = fasttrack_suite::obs::span!("analyze", tool = "FASTTRACK");
        fasttrack_suite::obs::event!("warning", var = 3);
    }
    fasttrack_suite::obs::disable_tracing();

    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text:?}");
    for line in &lines {
        ftjson::parse(line).expect("span line is valid JSON");
    }
    assert!(lines[0].contains("\"kind\":\"event\""));
    assert!(lines[1].contains("\"kind\":\"span\""));
}
