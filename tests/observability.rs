//! End-to-end checks of the ft-obs observability wiring: detector metrics
//! snapshots, pipeline per-stage instrumentation, online-monitor overhead
//! reporting, and the JSON snapshot format round-tripping through the
//! workspace's own JSON parser.

use fasttrack_suite::core::{Detector, Empty, FastTrack};
use fasttrack_suite::obs::{JsonlSink, MetricsRegistry};
use fasttrack_suite::runtime::online::Monitor;
use fasttrack_suite::runtime::{run_pipeline, Pipeline};
use fasttrack_suite::trace::gen::{self, GenConfig};
use fasttrack_suite::trace::json as ftjson;

#[test]
fn pipeline_over_race_free_trace_suppresses_and_is_monotone() {
    let trace = gen::generate(&GenConfig::race_free(), 11);
    let mut p = Pipeline::new(vec![Box::new(FastTrack::new()), Box::new(Empty::new())]);
    run_pipeline(&mut p, &trace);
    let reports = p.stage_reports();

    // The prefilter suppressed something on a race-free workload...
    assert!(reports[0].events_suppressed > 0);
    assert!(reports[0].suppression_rate > 0.0);
    // ...and events_seen is monotone non-increasing down the chain.
    assert!(reports[1].events_seen <= reports[0].events_seen);
    assert_eq!(reports[0].events_seen, trace.len() as u64);
    assert_eq!(
        reports[1].events_seen,
        reports[0].events_seen - reports[0].events_suppressed
    );
    // Latency histograms saw exactly the events each stage received.
    assert_eq!(reports[0].latency.count, reports[0].events_seen);
    assert_eq!(reports[1].latency.count, reports[1].events_seen);
}

#[test]
fn detector_metrics_bridge_stats_and_rules() {
    let trace = gen::generate(&GenConfig::default(), 5);
    let mut ft = FastTrack::new();
    ft.run(&trace);
    let snap = ft.metrics();
    assert_eq!(snap.meta("tool"), Some("FASTTRACK"));
    assert_eq!(snap.counter("ops"), Some(ft.stats().ops));
    assert_eq!(snap.counter("reads"), Some(ft.stats().reads));
    assert_eq!(snap.counter("warnings"), Some(ft.warnings().len() as u64));
    // Per-rule counters + percentage gauges for every breakdown entry.
    for rc in ft.rule_breakdown() {
        assert_eq!(
            snap.counter(&format!("rule.{}.hits", rc.rule)),
            Some(rc.hits)
        );
        let pct = snap
            .gauge(&format!("rule.{}.percent", rc.rule))
            .expect("percent gauge");
        assert!((pct - rc.percent).abs() < 1e-9);
    }
}

/// The hand-rolled JSON snapshot writer produces documents the workspace's
/// own parser accepts, with every counter/gauge/histogram intact.
#[test]
fn snapshot_json_round_trips_through_the_trace_parser() {
    let trace = gen::generate(&GenConfig::default(), 9);
    let mut p = Pipeline::new(vec![Box::new(FastTrack::new()), Box::new(Empty::new())]);
    run_pipeline(&mut p, &trace);
    let snap = p.metrics_snapshot();
    let parsed = ftjson::parse(&snap.to_json()).expect("snapshot JSON parses");

    let counters = parsed.get("counters").expect("counters object");
    for (name, value) in &snap.counters {
        let got = counters.get(name).and_then(|v| v.as_f64()).unwrap();
        assert_eq!(got as u64, *value, "{name}");
    }
    let gauges = parsed.get("gauges").expect("gauges object");
    for (name, value) in &snap.gauges {
        let got = gauges.get(name).and_then(|v| v.as_f64()).unwrap();
        assert!((got - value).abs() < 1e-9, "{name}");
    }
    let histograms = parsed.get("histograms").expect("histograms object");
    for (name, summary) in &snap.histograms {
        let h = histograms.get(name).unwrap_or_else(|| panic!("{name}"));
        assert_eq!(
            h.get("count").and_then(|v| v.as_f64()).unwrap() as u64,
            summary.count
        );
        assert_eq!(
            h.get("p50").and_then(|v| v.as_f64()).unwrap() as u64,
            summary.p50
        );
        assert_eq!(
            h.get("max").and_then(|v| v.as_f64()).unwrap() as u64,
            summary.max
        );
    }
}

#[test]
fn online_monitor_replay_reports_overhead_in_both_modes() {
    let trace = gen::generate(&GenConfig::race_free(), 21);
    for make in [
        Monitor::new::<FastTrack> as fn(FastTrack) -> Monitor,
        Monitor::buffered,
    ] {
        let monitor = make(FastTrack::new());
        for op in trace.events() {
            monitor.emit_raw(op.clone());
        }
        let report = monitor.report();
        assert!(report.warnings.is_empty());
        assert_eq!(report.stats.ops, trace.len() as u64);
        let emit = report.metrics.histogram("online.emit_ns").expect("emit_ns");
        assert_eq!(emit.count, trace.len() as u64);
    }
}

#[test]
fn registry_merge_collects_worker_thread_metrics() {
    // The cross-thread aggregation pattern: each worker keeps its own
    // registry, the owner merges them afterwards.
    let handles: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut reg = MetricsRegistry::new();
                for i in 0..100u64 {
                    reg.inc_counter("events", 1);
                    reg.record("latency_ns", i * (w + 1));
                }
                reg
            })
        })
        .collect();
    let mut total = MetricsRegistry::new();
    for h in handles {
        total.merge(&h.join().unwrap());
    }
    let snap = total.snapshot();
    assert_eq!(snap.counter("events"), Some(400));
    assert_eq!(snap.histogram("latency_ns").unwrap().count, 400);
}

#[test]
fn jsonl_sink_records_cli_style_spans() {
    // Drive a span through a JSONL sink and parse each emitted line.
    let buf: std::sync::Arc<std::sync::Mutex<Vec<u8>>> = Default::default();

    struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for Shared {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fasttrack_suite::obs::set_sink(Box::new(JsonlSink::new(Box::new(Shared(buf.clone())))));
    {
        let _g = fasttrack_suite::obs::span!("analyze", tool = "FASTTRACK");
        fasttrack_suite::obs::event!("warning", var = 3);
    }
    fasttrack_suite::obs::disable_tracing();

    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text:?}");
    for line in &lines {
        ftjson::parse(line).expect("span line is valid JSON");
    }
    assert!(lines[0].contains("\"kind\":\"event\""));
    assert!(lines[1].contains("\"kind\":\"span\""));
}

#[test]
fn flight_recorder_drains_recent_events_into_warnings() {
    use fasttrack_suite::core::{FastTrackConfig, RecorderConfig};

    let cfg = GenConfig {
        ops: 800,
        ..GenConfig::default().with_races(0.15)
    };
    let trace = gen::generate(&cfg, 9);

    let mut plain = FastTrack::new();
    plain.run(&trace);
    assert!(!plain.warnings().is_empty(), "need a racy trace");

    let mut recorded = FastTrack::with_config(FastTrackConfig {
        recorder: Some(RecorderConfig { capacity: 8 }),
        ..FastTrackConfig::default()
    });
    recorded.run(&trace);

    // Same races either way — the recorder is observation, not analysis.
    assert_eq!(plain.warnings().len(), recorded.warnings().len());
    for (p, r) in plain.warnings().iter().zip(recorded.warnings()) {
        assert_eq!(p.var, r.var);
        assert_eq!(p.kind, r.kind);
        let (pp, rp) = (
            p.provenance.as_ref().unwrap(),
            r.provenance.as_ref().unwrap(),
        );
        assert_eq!(pp.rule, rp.rule);
        // Recorder off: no tails. Recorder on: the accessing thread's tail
        // is present, capped at the ring capacity, ends at the racy access,
        // and is ordered by trace index.
        assert!(pp.recent.is_empty());
        let current_tail = rp
            .recent
            .iter()
            .find(|tail| tail.tid == r.current.tid)
            .expect("accessing thread has a tail");
        assert!(!current_tail.events.is_empty());
        assert!(current_tail.events.len() <= 8);
        let indices: Vec<u64> = current_tail.events.iter().map(|e| e.index).collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted, "tail out of order: {indices:?}");
        assert_eq!(
            indices.last().copied(),
            r.current.event_index.map(|i| i as u64),
            "tail does not end at the racy access"
        );
    }

    // The recorder surfaces in metrics and in shadow accounting.
    let rec = recorded.flight_recorder().expect("recorder enabled");
    assert!(rec.recorded() > 0);
    assert!(rec.bytes() > 0);
    assert!(recorded.shadow_bytes() >= plain.shadow_bytes() + rec.bytes());
    let snap = recorded.metrics();
    assert_eq!(
        snap.counter("recorder.recorded_events"),
        Some(rec.recorded())
    );
}

#[test]
fn tier_counters_partition_the_accesses() {
    use fasttrack_suite::core::FastTrackConfig;

    let trace = gen::generate(&GenConfig::default(), 21);
    let mut ft = FastTrack::with_config(FastTrackConfig {
        profile_tiers: true,
        ..FastTrackConfig::default()
    });
    ft.run(&trace);

    // Every access lands in exactly one tier.
    let tiers = ft.tier_profile();
    let stats = ft.stats();
    assert_eq!(tiers.total(), stats.reads + stats.writes);
    assert!(
        tiers.same_epoch > 0,
        "fused loop never hit tier 1: {tiers:?}"
    );

    // The always-on counters and the profiled latency histograms both
    // surface in the metrics snapshot.
    let snap = ft.metrics();
    assert_eq!(snap.counter("tier.same_epoch.hits"), Some(tiers.same_epoch));
    assert_eq!(
        snap.counter("tier.inline_exclusive.hits"),
        Some(tiers.inline_exclusive)
    );
    assert_eq!(snap.counter("tier.preensured.hits"), Some(tiers.preensured));
    assert_eq!(snap.counter("tier.governed.hits"), Some(tiers.governed));
    let governed_ns = snap.histogram("tier.governed.ns").expect("profiled");
    assert_eq!(governed_ns.count, tiers.governed);

    // And the Prometheus rendering carries them in sanitized form.
    let prom = fasttrack_suite::obs::to_prometheus(&snap, "ftrace");
    assert!(prom.contains("# TYPE ftrace_tier_same_epoch_hits counter"));
    assert!(prom.contains(&format!("ftrace_tier_same_epoch_hits {}", tiers.same_epoch)));
}
