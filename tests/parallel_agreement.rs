//! Agreement tests for the block-parallel analysis engine: across shard
//! counts {1, 2, 4, 8}, `analyze_parallel` must reproduce the sequential
//! FastTrack detector's warnings *exactly* — same races, same order, same
//! statistics — on a large population of randomly generated feasible
//! traces plus a fixed regression trace exercising every synchronization
//! operation the trace model has. The streamed front end
//! (`analyze_parallel_stream` over the trace's `.ftb` encoding) is pinned
//! to the in-memory engine at every width on the same population: both
//! feeds drive the identical two-phase coordinator, and any divergence
//! means the `.ftb` decode path dropped or reordered an event.
//!
//! The one tolerated difference is `Stats::vc_reused`: per-shard read-clock
//! pools see a different recycle/reuse interleaving than the sequential
//! detector's single pool, so both sides are zeroed before comparison.
//! `vc_recycled` and `vc_allocated` are deterministic and must match.

use fasttrack_suite::clock::Tid;
use fasttrack_suite::core::{Detector, FastTrack};
use fasttrack_suite::runtime::{analyze_parallel, analyze_parallel_stream, ParallelConfig};
use fasttrack_suite::trace::gen::{self, GenConfig};
use fasttrack_suite::trace::{FtbReader, LockId, Op, Trace, TraceBuilder, VarId};

const SHARD_SERIES: [usize; 4] = [1, 2, 4, 8];

fn sequential(trace: &Trace) -> FastTrack {
    let mut ft = FastTrack::new();
    ft.run(trace);
    ft
}

/// Asserts that every shard width reproduces the sequential analysis, and
/// that the streamed front end (`.ftb` bytes in, no materialized trace)
/// reproduces the in-memory engine report for report — warnings with full
/// provenance, stats, and rule breakdown alike.
fn assert_agrees(trace: &Trace, label: &str) {
    let seq = sequential(trace);
    let mut seq_stats = seq.stats().clone();
    seq_stats.vc_reused = 0;
    let bytes = trace
        .to_ftb()
        .unwrap_or_else(|e| panic!("{label}: trace failed to serialize: {e}"));
    for shards in SHARD_SERIES {
        let config = ParallelConfig::with_shards(shards);
        let report = analyze_parallel(trace, &config);
        assert_eq!(
            report.warnings,
            seq.warnings(),
            "{label}: warnings diverge at {shards} shard(s)"
        );
        let mut par_stats = report.stats.clone();
        par_stats.vc_reused = 0;
        assert_eq!(
            par_stats, seq_stats,
            "{label}: stats diverge at {shards} shard(s)"
        );
        assert_eq!(
            report.rule_breakdown,
            seq.rule_breakdown(),
            "{label}: rule breakdown diverges at {shards} shard(s)"
        );
        let mut reader = FtbReader::new(&bytes[..])
            .unwrap_or_else(|e| panic!("{label}: ftb header rejected: {e}"));
        let streamed = analyze_parallel_stream(&mut reader, &config)
            .unwrap_or_else(|e| panic!("{label}: stream decode failed at {shards} shard(s): {e}"));
        assert_eq!(
            streamed.warnings, report.warnings,
            "{label}: streamed warnings diverge from in-memory at {shards} shard(s)"
        );
        for (sw, pw) in streamed.warnings.iter().zip(&report.warnings) {
            assert_eq!(
                sw.provenance, pw.provenance,
                "{label}: streamed provenance diverges at {shards} shard(s)"
            );
        }
        let mut stream_stats = streamed.stats.clone();
        stream_stats.vc_reused = 0;
        assert_eq!(
            stream_stats, seq_stats,
            "{label}: streamed stats diverge at {shards} shard(s)"
        );
        assert_eq!(
            streamed.rule_breakdown, report.rule_breakdown,
            "{label}: streamed rule breakdown diverges at {shards} shard(s)"
        );
    }
}

/// Hundreds of random racy traces: the engine must report the exact same
/// races (variables, access pairs, trace positions) as the sequential
/// detector at every shard width.
#[test]
fn random_racy_traces_agree() {
    let cfg = GenConfig {
        ops: 600,
        ..GenConfig::default().with_races(0.08)
    };
    for seed in 0..500u64 {
        let trace = gen::generate(&cfg, seed);
        assert_agrees(&trace, &format!("racy seed {seed}"));
    }
}

/// Random race-free traces: both engines must agree on the clean verdict
/// (zero warnings), not just on warning equality.
#[test]
fn random_race_free_traces_agree_on_clean_verdict() {
    let cfg = GenConfig {
        ops: 600,
        ..GenConfig::race_free()
    };
    for seed in 0..500u64 {
        let trace = gen::generate(&cfg, seed);
        let seq = sequential(&trace);
        assert!(
            seq.warnings().is_empty(),
            "race-free generator produced a warning at seed {seed}"
        );
        assert_agrees(&trace, &format!("race-free seed {seed}"));
    }
}

/// Chaotic traces — unstructured op soup with heavy contention — push the
/// snapshot machinery hardest: nearly every access sits next to a sync op.
#[test]
fn chaotic_traces_agree() {
    for seed in 0..500u64 {
        let trace = gen::chaotic(6, 24, 4, 600, seed);
        assert_agrees(&trace, &format!("chaotic seed {seed}"));
    }
}

/// Varying thread/variable shape: routing must stay correct when variables
/// are scarcer than shards and when threads outnumber shards.
#[test]
fn shape_sweep_agrees() {
    for (threads, vars, seed) in [(2u32, 1u32, 1u64), (2, 3, 2), (8, 5, 3), (12, 64, 4)] {
        let cfg = GenConfig {
            threads,
            vars,
            ops: 800,
            ..GenConfig::default().with_races(0.1)
        };
        let trace = gen::generate(&cfg, seed);
        assert_agrees(&trace, &format!("shape {threads}x{vars} seed {seed}"));
    }
}

/// Seeded provenance property: every warning the FastTrack engines emit —
/// sequential and parallel alike — must carry a populated [`Provenance`]
/// whose rule is a label the rule breakdown actually counted (hits > 0),
/// whose conflicting epoch is a real epoch (not the initial sentinel), and
/// whose thread clock contains the accessing thread's own entry at the
/// epoch's clock value. The parallel engine must reproduce the sequential
/// provenance field by field at every shard width.
#[test]
fn every_warning_carries_matching_provenance() {
    let cfg = GenConfig {
        ops: 700,
        ..GenConfig::default().with_races(0.12)
    };
    let mut warnings_seen = 0usize;
    for seed in 0..120u64 {
        let trace = gen::generate(&cfg, seed);
        let seq = sequential(&trace);
        let breakdown = seq.rule_breakdown();
        for w in seq.warnings() {
            warnings_seen += 1;
            let p = w
                .provenance
                .as_ref()
                .unwrap_or_else(|| panic!("seed {seed}: warning without provenance: {w}"));
            let counted = breakdown
                .iter()
                .find(|r| r.rule == p.rule)
                .unwrap_or_else(|| panic!("seed {seed}: rule {:?} not in breakdown", p.rule));
            assert!(
                counted.hits > 0,
                "seed {seed}: rule {:?} reported a race but counted no hits",
                p.rule
            );
            assert!(
                !p.conflict.is_initial(),
                "seed {seed}: conflict epoch is the initial sentinel: {p}"
            );
            assert_eq!(
                p.current_epoch.tid(),
                w.current.tid,
                "seed {seed}: provenance epoch thread != reporting thread"
            );
            let own = p
                .thread_clock
                .iter()
                .find(|(t, _)| *t == w.current.tid)
                .unwrap_or_else(|| panic!("seed {seed}: C_t missing the accessing thread"));
            assert_eq!(
                own.1,
                p.current_epoch.clock(),
                "seed {seed}: C_t(t) != E(t) at detection"
            );
        }
        // Field-by-field parallel agreement on provenance (the wholesale
        // warning equality in `assert_agrees` implies this, but a split
        // comparison localizes a provenance regression to the field). The
        // streamed engine is held to the same bar: its warnings must carry
        // provenance identical to the in-memory engine's.
        let bytes = trace.to_ftb().expect("trace serializes");
        for shards in SHARD_SERIES {
            let config = ParallelConfig::with_shards(shards);
            let report = analyze_parallel(&trace, &config);
            assert_eq!(report.warnings.len(), seq.warnings().len());
            let mut reader = FtbReader::new(&bytes[..]).expect("valid header");
            let streamed = analyze_parallel_stream(&mut reader, &config).expect("clean decode");
            assert_eq!(
                streamed.warnings, report.warnings,
                "seed {seed} shards {shards}: streamed warnings (incl. provenance)"
            );
            for (pw, sw) in report.warnings.iter().zip(seq.warnings()) {
                let (pp, sp) = (
                    pw.provenance.as_ref().expect("parallel provenance"),
                    sw.provenance.as_ref().expect("sequential provenance"),
                );
                assert_eq!(pp.rule, sp.rule, "seed {seed} shards {shards}: rule");
                assert_eq!(
                    pp.conflict, sp.conflict,
                    "seed {seed} shards {shards}: conflict epoch"
                );
                assert_eq!(
                    pp.current_epoch, sp.current_epoch,
                    "seed {seed} shards {shards}: current epoch"
                );
                assert_eq!(
                    pp.thread_clock, sp.thread_clock,
                    "seed {seed} shards {shards}: thread clock"
                );
                assert_eq!(
                    pp.prior_write, sp.prior_write,
                    "seed {seed} shards {shards}: prior write"
                );
                assert_eq!(
                    pp.prior_reads, sp.prior_reads,
                    "seed {seed} shards {shards}: prior reads"
                );
            }
        }
    }
    assert!(
        warnings_seen > 50,
        "property test exercised too few warnings ({warnings_seen})"
    );
}

/// A fixed regression trace that exercises every synchronization operation
/// kind — fork, join, acquire, release, wait, notify, volatile read/write,
/// barrier release, atomic markers — interleaved with accesses, including
/// one deliberate race. A change to any sync handler that breaks
/// coordinator/sequential equivalence fails here with a stable, readable
/// trace rather than a generated seed.
#[test]
fn regression_trace_with_every_sync_op_kind() {
    let t0 = Tid::new(0);
    let t1 = Tid::new(1);
    let t2 = Tid::new(2);
    let m = LockId::new(0);
    let x = VarId::new(0);
    let y = VarId::new(1);
    let z = VarId::new(2);
    let v = VarId::new(3);

    let mut b = TraceBuilder::new();
    b.write(t0, x).unwrap();
    b.fork(t0, t1).unwrap();
    b.fork(t0, t2).unwrap();

    // Lock-protected handoff of y, with a wait (release+acquire) inside the
    // critical section and a happens-before-free notify.
    b.acquire(t0, m).unwrap();
    b.write(t0, y).unwrap();
    b.push(Op::Notify(t0, m)).unwrap();
    b.release(t0, m).unwrap();
    b.acquire(t1, m).unwrap();
    b.push(Op::Wait(t1, m)).unwrap();
    b.read(t1, y).unwrap();
    b.release(t1, m).unwrap();

    // Volatile handoff of z from t1 to t2.
    b.write(t1, z).unwrap();
    b.volatile_write(t1, v).unwrap();
    b.volatile_read(t2, v).unwrap();
    b.read(t2, z).unwrap();

    // Atomic markers are no-ops for race detection but must flow through.
    b.push(Op::AtomicBegin(t2)).unwrap();
    b.write(t2, z).unwrap();
    b.push(Op::AtomicEnd(t2)).unwrap();

    // Barrier: everyone reads x race-free afterwards.
    b.barrier_release(vec![t0, t1, t2]).unwrap();
    b.read(t0, x).unwrap();
    b.read(t1, x).unwrap();
    b.read(t2, x).unwrap();

    // One deliberate race: t1 writes x while t2's read is concurrent.
    b.write(t1, x).unwrap();
    b.read(t2, x).unwrap();

    // Join everything back and touch x once more, race-free.
    b.join(t0, t1).unwrap();
    b.join(t0, t2).unwrap();
    b.write(t0, x).unwrap();
    let trace = b.finish();

    let seq = sequential(&trace);
    // One warning: t1's write to x is concurrent with the post-barrier
    // reads (read-write race); later races on x are suppressed by the
    // default once-per-variable reporting, and the engine must suppress
    // them identically.
    assert_eq!(seq.warnings().len(), 1, "warnings: {:?}", seq.warnings());
    assert_agrees(&trace, "regression trace");
}
