//! End-to-end §5.2 composition: prefilters in front of the heavyweight
//! checkers, across real workloads.

use fasttrack_suite::checkers::{SingleTrack, Velodrome};
use fasttrack_suite::core::FastTrack;
use fasttrack_suite::detectors::Djit;
use fasttrack_suite::runtime::{run_pipeline, Pipeline, ThreadLocalFilter};
use fasttrack_suite::workloads::{build, Scale, BENCHMARKS};

#[test]
fn fasttrack_prefilter_suppresses_most_accesses_on_race_free_workloads() {
    for name in ["crypt", "series", "sor"] {
        let trace = build(name, Scale::test(), 3);
        let mut p = Pipeline::new(vec![Box::new(FastTrack::new()), Box::new(Velodrome::new())]);
        run_pipeline(&mut p, &trace);
        let reports = p.stage_reports();
        let upstream = reports[0].events_seen;
        let downstream = reports[1].events_seen;
        assert!(
            downstream * 10 < upstream,
            "{name}: prefilter passed {downstream}/{upstream} events"
        );
        // Race-free workloads: accesses suppressed are exactly the data
        // accesses (sync ops always flow).
        let mix = trace.op_mix();
        assert_eq!(
            reports[0].events_suppressed,
            mix.reads + mix.writes,
            "{name}: every data access should be suppressed"
        );
    }
}

#[test]
fn racy_accesses_reach_the_downstream_checker() {
    let trace = build("hedc", Scale::test(), 3);
    let mut p = Pipeline::new(vec![
        Box::new(FastTrack::new()),
        Box::new(SingleTrack::new()),
    ]);
    run_pipeline(&mut p, &trace);
    let reports = p.stage_reports();
    assert_eq!(reports[0].warnings.len(), 3, "hedc has three races");
    // Racy variables' accesses flow downstream from the moment the race is
    // found (accesses *before* detection are already gone — the footnote-6
    // coverage reduction the paper documents: "this optimization may
    // involve some small reduction in coverage").
    assert!(reports[1].events_seen > 0);
    assert!(reports[1].events_seen < reports[0].events_seen);
}

#[test]
fn prefilter_coverage_loss_is_bounded_to_pre_detection_accesses() {
    // A race with repeated post-detection accesses: the downstream checker
    // still observes the ongoing conflict even behind the prefilter.
    use fasttrack_suite::clock::Tid;
    use fasttrack_suite::trace::{TraceBuilder, VarId};
    let mut b = TraceBuilder::with_threads(2);
    let x = VarId::new(0);
    for _ in 0..5 {
        b.write(Tid::new(0), x).unwrap();
        b.write(Tid::new(1), x).unwrap();
    }
    let trace = b.finish();

    let mut p = Pipeline::new(vec![
        Box::new(FastTrack::new()),
        Box::new(SingleTrack::new()),
    ]);
    run_pipeline(&mut p, &trace);
    let reports = p.stage_reports();
    // Only the first access (pre-detection) is lost.
    assert_eq!(reports[1].events_seen, trace.len() as u64 - 1);
    // The downstream checker confirms the nondeterminism on what it saw.
    assert_eq!(reports[1].warnings.len(), 1);
}

#[test]
fn tl_filter_is_weaker_than_race_filters() {
    for bench in BENCHMARKS.iter().filter(|b| b.compute_bound).take(6) {
        let trace = build(bench.name, Scale::test(), 5);

        let mut tl = Pipeline::new(vec![
            Box::new(ThreadLocalFilter::new()),
            Box::new(Velodrome::new()),
        ]);
        run_pipeline(&mut tl, &trace);
        let tl_seen = tl.stage_reports()[1].events_seen;

        let mut ft = Pipeline::new(vec![Box::new(FastTrack::new()), Box::new(Velodrome::new())]);
        run_pipeline(&mut ft, &trace);
        let ft_seen = ft.stage_reports()[1].events_seen;

        assert!(
            ft_seen <= tl_seen,
            "{}: FASTTRACK should filter at least as much as TL ({ft_seen} vs {tl_seen})",
            bench.name
        );
    }
}

#[test]
fn three_stage_pipelines_compose() {
    // TL → DJIT+ → Velodrome: each stage only sees what survived upstream.
    let trace = build("jbb", Scale::test(), 1);
    let mut p = Pipeline::new(vec![
        Box::new(ThreadLocalFilter::new()),
        Box::new(Djit::new()),
        Box::new(Velodrome::new()),
    ]);
    run_pipeline(&mut p, &trace);
    let reports = p.stage_reports();
    assert!(reports[0].events_seen >= reports[1].events_seen);
    assert!(reports[1].events_seen >= reports[2].events_seen);
    assert!(reports[0].events_suppressed > 0, "TL filtered something");
}

#[test]
fn races_with_post_sharing_accesses_survive_the_tl_filter() {
    // TL suppresses each variable's *first* access (it looks thread-local
    // at that point), so a two-access race is invisible downstream — but
    // any further conflicting access is caught.
    use fasttrack_suite::clock::Tid;
    use fasttrack_suite::trace::{TraceBuilder, VarId};
    let mut b = TraceBuilder::with_threads(2);
    let x = VarId::new(0);
    b.write(Tid::new(0), x).unwrap(); // suppressed by TL
    b.write(Tid::new(1), x).unwrap(); // forwarded: first shared access
    b.write(Tid::new(0), x).unwrap(); // forwarded: DJIT+ sees the conflict
    let trace = b.finish();

    let mut p = Pipeline::new(vec![
        Box::new(ThreadLocalFilter::new()),
        Box::new(Djit::new()),
    ]);
    run_pipeline(&mut p, &trace);
    let reports = p.stage_reports();
    assert_eq!(reports[1].events_seen, 2);
    assert_eq!(reports[1].warnings.len(), 1, "the ongoing race is caught");
}
