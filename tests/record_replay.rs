//! Record-once / analyze-many: online executions captured by the
//! [`Recorder`] replay identically through offline detectors, and traces
//! survive JSON serialization.

use fasttrack_suite::core::{Detector, FastTrack};
use fasttrack_suite::detectors::{BasicVc, Djit, Goldilocks};
use fasttrack_suite::runtime::online::Monitor;
use fasttrack_suite::runtime::{Pipeline, Recorder};
use fasttrack_suite::trace::Trace;
use fasttrack_suite::workloads::{build, Scale};

#[test]
fn online_execution_replays_offline_with_identical_verdict() {
    // Run a racy online scenario with a Recorder in front of FastTrack.
    let (recorder, handle) = Recorder::new();
    let monitor = Monitor::new(Pipeline::new(vec![
        Box::new(recorder),
        Box::new(FastTrack::new()),
    ]));
    let counter = monitor.tracked_var(0u32);
    let lock = monitor.mutex(());
    let root = monitor.root();

    let racy = monitor.tracked_var(0u32);
    let children: Vec<_> = (0..3)
        .map(|_| {
            let counter = counter.clone();
            let lock = lock.clone();
            let racy = racy.clone();
            root.spawn(move |ctx| {
                for _ in 0..20 {
                    let _g = lock.lock(&ctx);
                    let v = counter.get(&ctx);
                    counter.set(&ctx, v + 1);
                }
                racy.set(&ctx, 1); // unsynchronized: the race
            })
        })
        .collect();
    for c in children {
        c.join(&root);
    }
    let online_warnings = monitor.report().warnings;
    assert_eq!(online_warnings.len(), 1, "{online_warnings:?}");

    // Replay the recording offline through several detectors.
    let trace = handle.to_trace().expect("online stream is feasible");
    for mut tool in [
        Box::new(FastTrack::new()) as Box<dyn Detector>,
        Box::new(Djit::new()),
        Box::new(BasicVc::new()),
        Box::new(Goldilocks::new()),
    ] {
        for (i, op) in trace.events().iter().enumerate() {
            tool.on_op(i, op);
        }
        assert_eq!(
            tool.warnings().len(),
            1,
            "{} disagrees with the online verdict",
            tool.name()
        );
        assert_eq!(tool.warnings()[0].var, online_warnings[0].var);
    }
}

#[test]
fn traces_round_trip_through_json() {
    let trace = build("tsp", Scale::test(), 11);
    let json = trace.to_json();
    let back = Trace::from_json(&json).expect("round trip");
    assert_eq!(back, trace);

    // Identical analysis results on the round-tripped trace.
    let mut a = FastTrack::new();
    a.run(&trace);
    let mut b = FastTrack::new();
    b.run(&back);
    assert_eq!(a.warnings(), b.warnings());
    assert_eq!(a.stats(), b.stats());
}

#[test]
fn json_is_portable_across_granularity() {
    use fasttrack_suite::runtime::coarsen;
    let trace = build("colt", Scale::test(), 2);
    let back = Trace::from_json(&trace.to_json()).unwrap();
    // var→object metadata survives, so coarsening gives the same trace.
    assert_eq!(coarsen(&back), coarsen(&trace));
}
