//! Soundness properties for the ft-sampler O(1)-samples tier, pinned over
//! a large population of generated traces (~1000 seeds):
//!
//! 1. **Subset soundness** — every variable the sampler warns about is a
//!    variable full FastTrack warns about on the same trace. The sampler
//!    may *miss* races (it only sees admitted accesses) but can never
//!    fabricate one: its vector clocks are exact because every sync op is
//!    processed in full, so a concurrent sampled pair is a real race.
//! 2. **Provenance agreement** — sampler warnings carry epoch/clock
//!    provenance obeying the same structural invariants the FastTrack
//!    engines are held to (`C_t(t) == E(t)` at detection, non-sentinel
//!    conflict epoch), and the flagged variable matches a FastTrack
//!    warning's variable.
//! 3. **Budget 0 is inert** — zero samples kept means zero warnings and no
//!    panic, while sync bookkeeping still runs.
//! 4. **Determinism** — a fixed (seed, budget, rate) yields identical
//!    warnings and admission counts across repeated runs, and across the
//!    two drivers (the skip-counting `replay` loop and per-op `run`
//!    dispatch), which consume the split gap/reservoir RNG streams in the
//!    same order by construction.

use fasttrack_suite::core::{Detector, FastTrack};
use fasttrack_suite::sampler::{Sampler, SamplerConfig};
use fasttrack_suite::trace::gen::{self, GenConfig};
use fasttrack_suite::trace::{Trace, VarId};

fn fasttrack_race_vars(trace: &Trace) -> Vec<VarId> {
    let mut ft = FastTrack::new();
    ft.run(trace);
    let mut vars: Vec<VarId> = ft.warnings().iter().map(|w| w.var).collect();
    vars.sort();
    vars.dedup();
    vars
}

/// Rate 1.0 admits every access so the subset property is stressed with
/// the sampler actually catching races, not vacuously warning nothing.
fn eager(seed: u64, budget: usize) -> SamplerConfig {
    SamplerConfig::default()
        .with_budget(budget)
        .with_rate(1.0)
        .with_seed(seed)
}

fn assert_subset_with_provenance(trace: &Trace, config: SamplerConfig, label: &str) {
    let known = fasttrack_race_vars(trace);
    let mut sampler = Sampler::with_config(config);
    sampler.replay(trace);
    for w in sampler.warnings() {
        assert!(
            known.binary_search(&w.var).is_ok(),
            "{label}: sampler fabricated a race on {} that FastTrack does not report",
            w.var
        );
        let p = w
            .provenance
            .as_ref()
            .unwrap_or_else(|| panic!("{label}: sampler warning without provenance: {w}"));
        assert!(
            !p.conflict.is_initial(),
            "{label}: conflict epoch is the initial sentinel: {p}"
        );
        assert_eq!(
            p.current_epoch.tid(),
            w.current.tid,
            "{label}: provenance epoch thread != reporting thread"
        );
        let own = p
            .thread_clock
            .iter()
            .find(|(t, _)| *t == w.current.tid)
            .unwrap_or_else(|| panic!("{label}: C_t missing the accessing thread"));
        assert_eq!(
            own.1,
            p.current_epoch.clock(),
            "{label}: C_t(t) != E(t) at detection"
        );
    }
}

/// 600 racy + 200 chaotic + 200 race-free generated traces: no sampler
/// warning may name a variable outside FastTrack's racy-variable set, at
/// several budgets.
#[test]
fn sampler_warnings_are_a_subset_of_fasttrack() {
    let racy = GenConfig {
        ops: 400,
        ..GenConfig::default().with_races(0.08)
    };
    for seed in 0..600u64 {
        let trace = gen::generate(&racy, seed);
        let budget = [1, 4, 16][(seed % 3) as usize];
        assert_subset_with_provenance(&trace, eager(seed, budget), &format!("racy seed {seed}"));
    }
    for seed in 0..200u64 {
        let trace = gen::chaotic(6, 24, 4, 400, seed);
        assert_subset_with_provenance(&trace, eager(seed, 4), &format!("chaotic seed {seed}"));
    }
    let clean = GenConfig {
        ops: 400,
        ..GenConfig::race_free()
    };
    for seed in 0..200u64 {
        let trace = gen::generate(&clean, seed);
        let mut sampler = Sampler::with_config(eager(seed, 4));
        sampler.replay(&trace);
        assert!(
            sampler.warnings().is_empty(),
            "race-free seed {seed}: sampler warned on a race-free trace: {:?}",
            sampler.warnings()
        );
    }
}

/// Budget 0 keeps no samples: the sampler must stay silent (and not
/// panic) while still counting every event it replays.
#[test]
fn budget_zero_reports_nothing_and_does_not_panic() {
    let cfg = GenConfig {
        ops: 400,
        ..GenConfig::default().with_races(0.1)
    };
    for seed in 0..100u64 {
        let trace = gen::generate(&cfg, seed);
        let mut sampler = Sampler::with_config(eager(seed, 0));
        sampler.replay(&trace);
        assert!(
            sampler.warnings().is_empty(),
            "seed {seed}: budget 0 produced warnings"
        );
        assert_eq!(
            sampler.stats().ops,
            trace.len() as u64,
            "seed {seed}: budget 0 dropped events"
        );
        assert_eq!(
            sampler.samples_live(),
            0,
            "seed {seed}: budget 0 kept samples"
        );
    }
}

/// A fixed (seed, budget, rate) is fully deterministic: repeated replays
/// agree, and the per-op `run` driver agrees with the skip-counting
/// `replay` driver — warnings, admissions, and eviction counts alike.
#[test]
fn fixed_seed_is_deterministic_across_runs_and_drivers() {
    let cfg = GenConfig {
        ops: 400,
        ..GenConfig::default().with_races(0.08)
    };
    for seed in 0..100u64 {
        let trace = gen::generate(&cfg, seed);
        // A partial admission rate so the RNG streams are actually consulted.
        let config = SamplerConfig::default()
            .with_budget(2)
            .with_rate(0.05)
            .with_seed(seed ^ 0xdead_beef);

        let mut a = Sampler::with_config(config.clone());
        a.replay(&trace);
        let mut b = Sampler::with_config(config.clone());
        b.replay(&trace);
        assert_eq!(
            a.warnings(),
            b.warnings(),
            "seed {seed}: replay nondeterminism"
        );
        assert_eq!(
            a.admitted(),
            b.admitted(),
            "seed {seed}: admission nondeterminism"
        );
        assert_eq!(
            a.evicted(),
            b.evicted(),
            "seed {seed}: eviction nondeterminism"
        );

        let mut c = Sampler::with_config(config);
        c.run(&trace);
        assert_eq!(
            a.warnings(),
            c.warnings(),
            "seed {seed}: replay and per-op drivers diverge on warnings"
        );
        assert_eq!(
            a.admitted(),
            c.admitted(),
            "seed {seed}: replay and per-op drivers diverge on admissions"
        );
    }
}
