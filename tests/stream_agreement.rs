//! Property tests for the `.ftb` binary trace format and the fused
//! streaming analysis path.
//!
//! Two pins, both over seeded generated traces (structured, chaotic, and
//! Table 1 workloads, so barriers / volatiles / waits are all exercised):
//!
//! 1. **Round-trip**: `encode → decode → encode` is bit-identical, and the
//!    decoded trace carries the same events and id-space metadata.
//! 2. **Stream ≡ vec**: feeding a detector block-by-block from the byte
//!    stream ([`ft_runtime::analyze_stream`], and the parallel engine via
//!    [`ft_runtime::analyze_parallel_stream`]) is observably identical to
//!    materializing `Vec<Op>` and calling [`Detector::run`] — same
//!    warnings, same statistics, same rule breakdown.

use fasttrack::{Detector, FastTrack};
use ft_runtime::{analyze_parallel, analyze_parallel_stream, analyze_stream, ParallelConfig};
use ft_trace::gen::{self, GenConfig};
use ft_trace::{FtbReader, Trace, VarId};
use ft_workloads::Scale;

/// The trace zoo: every seed yields structurally different traces from
/// three generators (random structured, chaotic with heavy sync, and two
/// real benchmark builders).
fn trace_zoo(seed: u64) -> Vec<Trace> {
    vec![
        gen::generate(&GenConfig::default().with_races(0.05), seed),
        gen::chaotic(6, 24, 4, 4_000, seed),
        ft_workloads::build("tsp", Scale { ops: 3_000 }, seed),
        ft_workloads::build("philo", Scale { ops: 3_000 }, seed),
    ]
}

#[test]
fn ftb_round_trip_is_bit_identical() {
    for seed in 0..6 {
        for (k, trace) in trace_zoo(seed).into_iter().enumerate() {
            let ctx = format!("seed {seed} trace {k}");
            let bytes = trace.to_ftb().expect("encodable");
            let decoded = Trace::from_ftb(&bytes).expect("decodable");

            assert_eq!(decoded.events(), trace.events(), "{ctx}: events");
            assert_eq!(decoded.n_threads(), trace.n_threads(), "{ctx}: threads");
            assert_eq!(decoded.n_vars(), trace.n_vars(), "{ctx}: vars");
            assert_eq!(decoded.n_locks(), trace.n_locks(), "{ctx}: locks");
            for x in 0..trace.n_vars() {
                assert_eq!(
                    decoded.object_of(VarId::new(x)),
                    trace.object_of(VarId::new(x)),
                    "{ctx}: object_of({x})"
                );
            }

            // Re-encoding the decoded trace must reproduce the original
            // bytes exactly — the format has one canonical encoding.
            let bytes2 = decoded.to_ftb().expect("re-encodable");
            assert_eq!(bytes, bytes2, "{ctx}: round-trip bytes");
        }
    }
}

#[test]
fn streamed_analysis_equals_in_memory_analysis() {
    for seed in 0..6 {
        for (k, trace) in trace_zoo(seed).into_iter().enumerate() {
            let ctx = format!("seed {seed} trace {k}");

            let mut in_memory = FastTrack::new();
            in_memory.run(&trace);

            let bytes = trace.to_ftb().expect("encodable");
            let mut reader = FtbReader::new(&bytes[..]).expect("valid header");
            let mut streamed = FastTrack::new();
            let n = analyze_stream(&mut reader, &mut streamed).expect("valid stream");

            assert_eq!(n, trace.len() as u64, "{ctx}: event count");
            assert_eq!(streamed.warnings(), in_memory.warnings(), "{ctx}: warnings");
            assert_eq!(streamed.stats(), in_memory.stats(), "{ctx}: stats");
            assert_eq!(
                streamed.rule_breakdown(),
                in_memory.rule_breakdown(),
                "{ctx}: rules"
            );
        }
    }
}

#[test]
fn streamed_parallel_engine_equals_in_memory_parallel_engine() {
    for seed in 0..3 {
        for (k, trace) in trace_zoo(seed).into_iter().enumerate() {
            let ctx = format!("seed {seed} trace {k}");
            let config = ParallelConfig::with_shards(3);

            let in_memory = analyze_parallel(&trace, &config);

            let bytes = trace.to_ftb().expect("encodable");
            let mut reader = FtbReader::new(&bytes[..]).expect("valid header");
            let streamed = analyze_parallel_stream(&mut reader, &config).expect("valid stream");

            assert_eq!(streamed.warnings, in_memory.warnings, "{ctx}: warnings");
            assert_eq!(streamed.stats, in_memory.stats, "{ctx}: stats");
            assert_eq!(
                streamed.rule_breakdown, in_memory.rule_breakdown,
                "{ctx}: rules"
            );
        }
    }
}

#[test]
fn truncated_and_corrupt_streams_error_instead_of_lying() {
    let trace = gen::chaotic(4, 16, 3, 2_000, 99);
    let bytes = trace.to_ftb().expect("encodable");

    // Truncation at any non-record boundary is a decode error.
    let mut cut = bytes.clone();
    cut.truncate(bytes.len() - 5);
    let mut reader = FtbReader::new(&cut[..]).expect("header survives");
    let mut ft = FastTrack::new();
    assert!(analyze_stream(&mut reader, &mut ft).is_err());

    // A wrong magic is rejected before any event is applied.
    let mut wrong = bytes.clone();
    wrong[0] ^= 0xff;
    assert!(FtbReader::new(&wrong[..]).is_err());

    // An unsupported version is rejected too.
    let mut future = bytes;
    future[4] = 0xfe;
    assert!(FtbReader::new(&future[..]).is_err());
}
