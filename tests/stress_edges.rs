//! Stress and boundary tests: maximum thread counts, long epochs, deep
//! nesting, and wide read-sharing.

use fasttrack_suite::clock::{Tid, MAX_TID};
use fasttrack_suite::core::{Detector, FastTrack, ReadMode};
use fasttrack_suite::detectors::{BasicVc, Djit};
use fasttrack_suite::trace::{gen, HbOracle, LockId, TraceBuilder, VarId};

/// 256 threads — the full 8-bit tid space of the packed epoch.
#[test]
fn full_tid_space_reads_inflate_to_wide_vc() {
    let n = MAX_TID + 1; // 256 threads, ids 0..=255
    let x = VarId::new(0);
    let mut b = TraceBuilder::with_threads(n);
    // Every thread reads x concurrently: the read history must hold all of
    // them. Thread 0 writes first; the write is concurrent with nothing.
    b.write(Tid::new(0), x).unwrap();
    let barrier: Vec<Tid> = (0..n).map(Tid::new).collect();
    b.barrier_release(barrier).unwrap(); // orders the write before the reads
    for t in 0..n {
        b.read(Tid::new(t), x).unwrap();
    }
    let trace = b.finish();

    let mut ft = FastTrack::new();
    ft.run(&trace);
    assert!(ft.warnings().is_empty());
    assert_eq!(ft.read_mode(x), ReadMode::Shared);
    let rvc = ft.read_clock(x).expect("shared mode");
    assert_eq!(rvc.iter_nonzero().count(), n as usize);

    // And a write after everything must see all 256 reads at once.
    let mut b2 = TraceBuilder::with_threads(n);
    b2.write(Tid::new(0), x).unwrap();
    let all: Vec<Tid> = (0..n).map(Tid::new).collect();
    b2.barrier_release(all.clone()).unwrap();
    for t in 0..n {
        b2.read(Tid::new(t), x).unwrap();
    }
    b2.barrier_release(all).unwrap();
    b2.write(Tid::new(7), x).unwrap();
    let trace2 = b2.finish();
    let mut ft2 = FastTrack::new();
    ft2.run(&trace2);
    assert!(ft2.warnings().is_empty());
    assert_eq!(ft2.read_mode(x), ReadMode::Unread, "write collapsed the VC");
}

/// Long-running thread: tens of thousands of epochs, clocks well below the
/// 2²⁴ packing limit, epochs stay consistent throughout.
#[test]
fn long_epoch_sequences() {
    let t = Tid::new(0);
    let m = LockId::new(0);
    let x = VarId::new(0);
    let mut b = TraceBuilder::with_threads(1);
    for _ in 0..30_000 {
        b.write(t, x).unwrap();
        b.acquire(t, m).unwrap();
        b.release(t, m).unwrap(); // each release advances the epoch
    }
    let trace = b.finish();
    let mut ft = FastTrack::new();
    ft.run(&trace);
    assert!(ft.warnings().is_empty());
    assert_eq!(
        ft.write_epoch(x).clock(),
        30_000,
        "one epoch per release, minus the last write"
    );
    assert_eq!(ft.write_epoch(x).tid(), t);
}

/// Deeply nested distinct locks (well-nested, not re-entrant).
#[test]
fn deep_lock_nesting() {
    let t0 = Tid::new(0);
    let t1 = Tid::new(1);
    let x = VarId::new(0);
    let depth = 200u32;
    let mut b = TraceBuilder::with_threads(2);
    for round in 0..2 {
        let t = if round == 0 { t0 } else { t1 };
        for i in 0..depth {
            b.acquire(t, LockId::new(i)).unwrap();
        }
        b.write(t, x).unwrap();
        for i in (0..depth).rev() {
            b.release(t, LockId::new(i)).unwrap();
        }
    }
    let trace = b.finish();
    let mut ft = FastTrack::new();
    ft.run(&trace);
    assert!(ft.warnings().is_empty(), "nested locking orders the writes");
}

/// Many threads hammering one variable under one lock: heavy clock growth,
/// everyone agrees it is race-free.
#[test]
fn contended_counter_across_many_threads() {
    let n = 32u32;
    let x = VarId::new(0);
    let m = LockId::new(0);
    let mut b = TraceBuilder::with_threads(n);
    for round in 0..2_000u32 {
        let t = Tid::new(round % n);
        b.acquire(t, m).unwrap();
        b.read(t, x).unwrap();
        b.write(t, x).unwrap();
        b.release(t, m).unwrap();
    }
    let trace = b.finish();
    for mut tool in [
        Box::new(FastTrack::new()) as Box<dyn Detector>,
        Box::new(Djit::new()),
        Box::new(BasicVc::new()),
    ] {
        for (i, op) in trace.events().iter().enumerate() {
            tool.on_op(i, op);
        }
        assert!(tool.warnings().is_empty(), "{}", tool.name());
    }
}

/// A heavier chaotic soak with wider thread counts than the per-crate
/// property tests use.
#[test]
fn wide_chaotic_soak_matches_oracle() {
    for seed in 0..40u64 {
        let trace = gen::chaotic(12, 8, 5, 600, seed);
        let expected = HbOracle::analyze(&trace).race_vars();
        let mut ft = FastTrack::new();
        ft.run(&trace);
        let mut got: Vec<_> = ft.warnings().iter().map(|w| w.var).collect();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got, expected, "seed {seed}");
    }
}

/// Interleaved volatile publication chains across many threads.
#[test]
fn volatile_chain_across_threads() {
    let n = 16u32;
    let data = VarId::new(0);
    let flag = VarId::new(1);
    let mut b = TraceBuilder::with_threads(n);
    // A relay: each thread reads the previous value and republishes.
    b.write(Tid::new(0), data).unwrap();
    b.volatile_write(Tid::new(0), flag).unwrap();
    for t in 1..n {
        b.volatile_read(Tid::new(t), flag).unwrap();
        b.write(Tid::new(t), data).unwrap();
        b.volatile_write(Tid::new(t), flag).unwrap();
    }
    let trace = b.finish();
    assert!(HbOracle::analyze(&trace).is_race_free());
    let mut ft = FastTrack::new();
    ft.run(&trace);
    assert!(ft.warnings().is_empty());
}
