//! Property suite pinning the sync-path fast lane to the pre-change
//! semantics. The fast lane is pure bookkeeping — versioned lock clocks,
//! release-epoch acquire hits, the barrier epoch-rebuild, and the
//! sampler's lazy epoch-only sync summary must never change a single
//! warning, provenance field, or rule count. Each engine pair below is
//! driven over roughly a thousand generated traces tuned to be
//! synchronization-dense (1-access critical sections, frequent barriers
//! and volatile hand-offs), the regime where every fast-lane branch is
//! exercised constantly:
//!
//! * sequential `FastTrack` with the fast lane on vs. `ablate_sync_fastpath`
//!   (full Figure 5 joins at every acquire/release/volatile/barrier);
//! * `analyze_parallel` at {1, 2, 4, 8} shards vs. the fused sequential
//!   engine (shards carry their own copy of the fast lane in `SyncClocks`,
//!   and the stats must match counter for counter);
//! * the sampler's lazy sync summary vs. its eager per-release clock copy.
//!
//! The suite also asserts the fast lane actually fires: a population this
//! sync-dense that reports a ~0% hit rate means the fast path was silently
//! disabled, which the equality checks alone would never catch.

use fasttrack_suite::core::{Detector, FastTrack, FastTrackConfig};
use fasttrack_suite::runtime::{analyze_parallel, ParallelConfig};
use fasttrack_suite::trace::gen::{self, GenConfig};
use fasttrack_suite::trace::Trace;
use ft_sampler::{Sampler, SamplerConfig};

/// Sync-dense generator shape: every access sits in its own critical
/// section, barriers and volatiles are orders of magnitude more frequent
/// than the paper's aggregate mix.
fn sync_dense(threads: u32, seed_races: f64) -> GenConfig {
    GenConfig {
        threads,
        vars: 24,
        locks: 6,
        ops: 700,
        accesses_per_cs: 1,
        p_barrier: 0.015,
        p_volatile: 0.04,
        ..GenConfig::default().with_races(seed_races)
    }
}

fn run_fasttrack(trace: &Trace, ablate: bool) -> FastTrack {
    let mut ft = FastTrack::with_config(FastTrackConfig {
        ablate_sync_fastpath: ablate,
        ..FastTrackConfig::default()
    });
    ft.run(trace);
    ft
}

/// The fused engine must be observationally identical to the ablated one:
/// warnings (order included), every provenance field, and the rule
/// breakdown. Only the cost counters (`vc_ops`, fast-path tallies) may
/// differ — that difference *is* the optimization.
fn assert_fused_matches_ablated(trace: &Trace, label: &str) -> (u64, u64) {
    let fused = run_fasttrack(trace, false);
    let ablated = run_fasttrack(trace, true);
    assert_eq!(
        fused.warnings(),
        ablated.warnings(),
        "{label}: warnings diverge under the sync fast lane"
    );
    for (fw, aw) in fused.warnings().iter().zip(ablated.warnings()) {
        assert_eq!(
            fw.provenance, aw.provenance,
            "{label}: provenance diverges under the sync fast lane"
        );
    }
    assert_eq!(
        fused.rule_breakdown(),
        ablated.rule_breakdown(),
        "{label}: rule breakdown diverges under the sync fast lane"
    );
    assert_eq!(
        ablated.stats().sync_fastpath_hits,
        0,
        "{label}: ablated engine took a fast path"
    );
    (
        fused.stats().sync_fastpath_hits,
        fused.stats().sync_slow_joins,
    )
}

/// ~800 sync-dense traces (racy, race-free, and chaotic shapes) pinning
/// fused ≡ ablated, plus the population-level hit-rate floor.
#[test]
fn fused_matches_ablated_on_sync_dense_population() {
    let mut hits = 0u64;
    let mut slow = 0u64;
    for seed in 0..200u64 {
        let racy = gen::generate(&sync_dense(4, 0.1), seed);
        let (h, s) = assert_fused_matches_ablated(&racy, &format!("racy seed {seed}"));
        hits += h;
        slow += s;
        let clean = gen::generate(&sync_dense(6, 0.0), seed);
        let (h, s) = assert_fused_matches_ablated(&clean, &format!("clean seed {seed}"));
        hits += h;
        slow += s;
        let chaos = gen::chaotic(6, 16, 4, 600, 10_000 + seed);
        let (h, s) = assert_fused_matches_ablated(&chaos, &format!("chaotic seed {seed}"));
        hits += h;
        slow += s;
        // Wide shape: 16 threads makes each skipped join 4x the work of
        // the 4-thread shapes, and barriers cover more lanes.
        let wide = gen::generate(&sync_dense(16, 0.05), 20_000 + seed);
        let (h, s) = assert_fused_matches_ablated(&wide, &format!("wide seed {seed}"));
        hits += h;
        slow += s;
    }
    let rate = hits as f64 / (hits + slow).max(1) as f64;
    assert!(
        rate > 0.10,
        "sync fast lane barely fires on a sync-dense population: \
         {hits} hits / {slow} slow joins ({:.1}%)",
        rate * 100.0
    );
}

/// ~100 sync-dense traces through the parallel engine at every shard
/// width: warnings, rule breakdown, and the *full* stats block (including
/// the fast-lane counters, which `SyncClocks` maintains independently)
/// must reproduce the fused sequential engine. `vc_reused` is zeroed on
/// both sides — per-shard read-clock pools recycle in a different
/// interleaving (see `parallel_agreement.rs`).
#[test]
fn parallel_shards_reproduce_fused_engine_on_sync_dense_traces() {
    for seed in 0..50u64 {
        for (shape, trace) in [
            ("dense", gen::generate(&sync_dense(6, 0.08), 40_000 + seed)),
            ("chaos", gen::chaotic(8, 20, 5, 700, 50_000 + seed)),
        ] {
            let seq = run_fasttrack(&trace, false);
            let mut seq_stats = seq.stats().clone();
            seq_stats.vc_reused = 0;
            for shards in [1usize, 2, 4, 8] {
                let report = analyze_parallel(&trace, &ParallelConfig::with_shards(shards));
                let label = format!("{shape} seed {seed} shards {shards}");
                assert_eq!(report.warnings, seq.warnings(), "{label}: warnings");
                assert_eq!(
                    report.rule_breakdown,
                    seq.rule_breakdown(),
                    "{label}: rule breakdown"
                );
                let mut par_stats = report.stats.clone();
                par_stats.vc_reused = 0;
                assert_eq!(par_stats, seq_stats, "{label}: stats (incl. fast-lane)");
            }
        }
    }
}

/// ~200 sync-dense traces pinning the sampler's lazy epoch-only sync
/// summary to the eager per-release baseline at full admission: identical
/// warnings, admissions, and rule breakdown.
#[test]
fn sampler_lazy_sync_matches_eager_on_sync_dense_population() {
    let base = SamplerConfig::default().with_rate(1.0).with_seed(11);
    for seed in 0..100u64 {
        for (shape, trace) in [
            ("dense", gen::generate(&sync_dense(5, 0.1), 70_000 + seed)),
            ("chaos", gen::chaotic(5, 14, 4, 650, 80_000 + seed)),
        ] {
            let mut lazy = Sampler::with_config(base.clone().with_eager_sync(false));
            let mut eager = Sampler::with_config(base.clone().with_eager_sync(true));
            lazy.replay(&trace);
            eager.replay(&trace);
            let label = format!("{shape} seed {seed}");
            assert_eq!(lazy.warnings(), eager.warnings(), "{label}: warnings");
            assert_eq!(lazy.admitted(), eager.admitted(), "{label}: admissions");
            assert_eq!(
                lazy.rule_breakdown(),
                eager.rule_breakdown(),
                "{label}: rule breakdown"
            );
        }
    }
}

/// Barrier-heavy shape aimed at the epoch-rebuild: long runs of identical
/// barrier episodes with no intervening lock traffic, which the rebuild
/// must service with O(|T|) lane writes while staying bit-identical.
#[test]
fn barrier_heavy_population_agrees_and_rebuild_fires() {
    let mut rebuild_capable_hits = 0u64;
    for seed in 0..100u64 {
        let cfg = GenConfig {
            threads: 8,
            vars: 16,
            locks: 2,
            ops: 800,
            accesses_per_cs: 1,
            p_barrier: 0.08,
            p_volatile: 0.0,
            w_lock_protected: 0.05,
            w_read_shared: 0.6,
            w_thread_local: 0.35,
            ..GenConfig::default()
        };
        let trace = gen::generate(&cfg, 90_000 + seed);
        let (h, _) = assert_fused_matches_ablated(&trace, &format!("barrier seed {seed}"));
        rebuild_capable_hits += h;
    }
    assert!(
        rebuild_capable_hits > 0,
        "no fast-path hits across the barrier-heavy population"
    );
}
